"""IP packet model with UDP/TCP payloads.

Only the fields the measurements observe are modelled, but those are
modelled exactly: the ToS / traffic-class byte (DSCP + ECN bits), TTL /
hop limit, addresses, ports, and TCP flags.  Payloads carry structured
transport objects (QUIC packets, TCP segments, HTTP bodies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.codepoints import ECN, ecn_from_tos, tos_with_ecn


@dataclass(frozen=True, slots=True)
class FlowKey:
    """5-tuple used for ECMP hashing and connection demultiplexing."""

    src: str
    dst: str
    sport: int
    dport: int
    proto: str  # "udp" | "tcp"

    def reversed(self) -> "FlowKey":
        return FlowKey(self.dst, self.src, self.dport, self.sport, self.proto)


@dataclass(slots=True)
class UdpPayload:
    """A UDP datagram body; ``data`` is typically a QUIC packet object."""

    sport: int
    dport: int
    data: Any


@dataclass(slots=True)
class TcpPayload:
    """A TCP segment: flags + data (no sequence-number machinery needed)."""

    sport: int
    dport: int
    syn: bool = False
    ack: bool = False
    fin: bool = False
    ece: bool = False
    cwr: bool = False
    data: Any = None


@dataclass(slots=True)
class IpPacket:
    """An IPv4/IPv6 packet as it travels hop by hop.

    Routers mutate ``tos`` and ``ttl`` in place on a per-hop copy; use
    :meth:`clone` for an independent copy (e.g. for ICMP quotes).
    Slotted: one of these is built per simulated datagram per direction,
    so attribute storage is the scan hot loop's dominant allocation.
    """

    version: int  # 4 or 6
    src: str
    dst: str
    ttl: int
    tos: int  # full ToS / traffic-class byte; ECN in the low 2 bits
    payload: UdpPayload | TcpPayload | Any = None
    trace_tag: str | None = None  # measurement bookkeeping, not on the wire

    def __post_init__(self) -> None:
        if self.version not in (4, 6):
            raise ValueError(f"bad IP version: {self.version}")
        if not 0 <= self.tos <= 255:
            raise ValueError(f"bad ToS byte: {self.tos}")
        if self.ttl < 0:
            raise ValueError("TTL must be >= 0")

    @property
    def ecn(self) -> ECN:
        return ecn_from_tos(self.tos)

    @ecn.setter
    def ecn(self, codepoint: ECN) -> None:
        self.tos = tos_with_ecn(self.tos, codepoint)

    @property
    def flow_key(self) -> FlowKey:
        if isinstance(self.payload, UdpPayload):
            return FlowKey(self.src, self.dst, self.payload.sport, self.payload.dport, "udp")
        if isinstance(self.payload, TcpPayload):
            return FlowKey(self.src, self.dst, self.payload.sport, self.payload.dport, "tcp")
        return FlowKey(self.src, self.dst, 0, 0, "raw")

    def clone(self) -> "IpPacket":
        """A shallow-payload copy safe for header mutation."""
        # Hand-rolled copies: clone() runs once per forwarded packet, and
        # dataclasses.replace() costs ~3x a direct constructor call.
        payload = self.payload
        if isinstance(payload, UdpPayload):
            payload = UdpPayload(payload.sport, payload.dport, payload.data)
        elif isinstance(payload, TcpPayload):
            payload = TcpPayload(
                payload.sport,
                payload.dport,
                payload.syn,
                payload.ack,
                payload.fin,
                payload.ece,
                payload.cwr,
                payload.data,
            )
        return IpPacket(
            version=self.version,
            src=self.src,
            dst=self.dst,
            ttl=self.ttl,
            tos=self.tos,
            payload=payload,
            trace_tag=self.trace_tag,
        )


def make_udp_packet(
    src: str,
    dst: str,
    sport: int,
    dport: int,
    data: Any,
    *,
    version: int = 4,
    ttl: int = 64,
    ecn: ECN = ECN.NOT_ECT,
    dscp: int = 0,
) -> IpPacket:
    """Convenience constructor for a UDP/IP packet."""
    tos = (dscp << 2) | int(ecn)
    return IpPacket(version, src, dst, ttl, tos, UdpPayload(sport, dport, data))


def make_tcp_packet(
    src: str,
    dst: str,
    sport: int,
    dport: int,
    *,
    version: int = 4,
    ttl: int = 64,
    ecn: ECN = ECN.NOT_ECT,
    syn: bool = False,
    ack: bool = False,
    fin: bool = False,
    ece: bool = False,
    cwr: bool = False,
    data: Any = None,
) -> IpPacket:
    """Convenience constructor for a TCP/IP packet."""
    payload = TcpPayload(sport, dport, syn=syn, ack=ack, fin=fin, ece=ece, cwr=cwr, data=data)
    return IpPacket(version, src, dst, ttl, int(ecn), payload)
