"""Router hops and their ECN (mis)behaviours.

Each impairment class observed in the paper is a one-line bit rewrite:

* ``CLEAR_ECN``      — zero the two ECN bits (what AS 1299 / Arelion did
  for Server Central, A2 Hosting, …; §6.1).
* ``BLEACH_TOS``     — rewrite the whole ToS byte (legacy routers; the
  paper's suspected root cause for clearing).
* ``REMARK_ECT1``    — rewrite ECT(0) to ECT(1) (§7.1; breaks QUIC
  validation and L4S, invisible to vanilla TCP).
* ``ZERO_ECT1``      — rewrite ECT(1) to not-ECT (observed after a
  re-marking hop for 16.88 k domains; §7.3).
* ``CE_MARK_ALL``    — mark every packet CE (broken router or severe
  congestion; the "All CE" validation failure).
* AQM marking        — probabilistic CE marking of ECT packets, the
  *intended* use of ECN.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.codepoints import ECN
from repro.netsim.packet import IpPacket
from repro.util.rng import RngStream


class EcnAction(enum.Enum):
    """What a router does to the ECN bits of forwarded packets."""

    PASS = "pass"
    CLEAR_ECN = "clear_ecn"
    BLEACH_TOS = "bleach_tos"
    REMARK_ECT1 = "remark_ect0_to_ect1"
    ZERO_ECT1 = "zero_ect1"
    CE_MARK_ALL = "ce_mark_all"


@dataclass(frozen=True)
class IcmpPolicy:
    """Whether and how a router answers TTL expiry with ICMP.

    ``responds=False`` models silent hops (tracebox timeouts);
    ``rate_per_second`` models ICMP rate limiting (tokens refill linearly,
    burst up to ``burst``).
    """

    responds: bool = True
    rate_per_second: float = 100.0
    burst: int = 20


@dataclass
class Router:
    """One forwarding hop."""

    name: str
    asn: int
    address: str
    ecn_action: EcnAction = EcnAction.PASS
    icmp_policy: IcmpPolicy = field(default_factory=IcmpPolicy)
    aqm_ce_probability: float = 0.0  # CE-mark ECT packets with this prob.
    drop_probability: float = 0.0  # random loss at this hop
    drop_if_ect: bool = False  # ECN blackholing: drop ECT/CE-marked packets

    # ICMP token bucket state
    _tokens: float = field(default=0.0, init=False, repr=False)
    _last_refill: float = field(default=0.0, init=False, repr=False)

    def __post_init__(self) -> None:
        self._tokens = float(self.icmp_policy.burst)

    # ------------------------------------------------------------------
    def apply_ecn_action(self, packet: IpPacket, rng: RngStream) -> None:
        """Rewrite the packet's ECN bits according to this hop's behaviour."""
        action = self.ecn_action
        if action is EcnAction.CLEAR_ECN:
            packet.ecn = ECN.NOT_ECT
        elif action is EcnAction.BLEACH_TOS:
            packet.tos = 0
        elif action is EcnAction.REMARK_ECT1:
            if packet.ecn is ECN.ECT0:
                packet.ecn = ECN.ECT1
        elif action is EcnAction.ZERO_ECT1:
            if packet.ecn is ECN.ECT1:
                packet.ecn = ECN.NOT_ECT
        elif action is EcnAction.CE_MARK_ALL:
            packet.ecn = ECN.CE
        if (
            self.aqm_ce_probability > 0.0
            and packet.ecn.is_ect
            and rng.random() < self.aqm_ce_probability
        ):
            packet.ecn = ECN.CE

    def drops(self, packet: IpPacket, rng: RngStream) -> bool:
        """Loss decision for one packet at this hop."""
        if self.drop_if_ect and packet.ecn is not ECN.NOT_ECT:
            return True
        return self.drop_probability > 0 and rng.random() < self.drop_probability

    # ------------------------------------------------------------------
    def may_send_icmp(self, now: float) -> bool:
        """Token-bucket ICMP rate limiting; consumes a token when allowed."""
        if not self.icmp_policy.responds:
            return False
        elapsed = max(0.0, now - self._last_refill)
        self._last_refill = now
        self._tokens = min(
            float(self.icmp_policy.burst),
            self._tokens + elapsed * self.icmp_policy.rate_per_second,
        )
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False
