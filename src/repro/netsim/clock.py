"""Virtual time.

All timeouts in the scanner (10 s per request, 3 s per tracebox hop) and
ICMP rate limiting run against this clock, so simulations are fully
deterministic and fast regardless of wall time.
"""

from __future__ import annotations


class Clock:
    """A monotonically advancing virtual clock (seconds)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds
        return self._now
