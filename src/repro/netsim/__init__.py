"""Packet-level network simulator.

Models exactly what the paper's measurements depend on: IP packets with
ECN bits and TTLs, routers that may rewrite those bits (clear, re-mark,
CE-mark, bleach the whole ToS byte), ICMP time-exceeded generation with
packet quotes (for tracebox), ICMP rate limiting, ECMP load balancing,
loss, and a virtual clock.
"""

from repro.netsim.clock import Clock
from repro.netsim.hops import EcnAction, IcmpPolicy, Router
from repro.netsim.icmp import IcmpMessage, QuotedPacket
from repro.netsim.packet import FlowKey, IpPacket, TcpPayload, UdpPayload
from repro.netsim.path import NetworkPath, TraversalResult
from repro.netsim.network import Network, PathTemplate

__all__ = [
    "Clock",
    "EcnAction",
    "IcmpPolicy",
    "Router",
    "IcmpMessage",
    "QuotedPacket",
    "FlowKey",
    "IpPacket",
    "TcpPayload",
    "UdpPayload",
    "NetworkPath",
    "TraversalResult",
    "Network",
    "PathTemplate",
]
