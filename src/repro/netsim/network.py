"""The network fabric: path templates, ECMP variants, route epochs.

A :class:`PathTemplate` describes the route between one vantage point and
one destination group.  Templates can hold several ECMP *variants*; the
variant a flow takes is chosen by a stable flow hash, which is how a
tracebox probe (different source port) can traverse a different physical
path than the transport-layer scan — a limitation the paper calls out
explicitly (§4.4, §7.3).

Templates are registered per route *epoch* (a start week), modelling
routing changes such as Server Central's Level3 → Arelion/Telia move in
December 2022 (§6.1).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.netsim.clock import Clock
from repro.netsim.packet import FlowKey, IpPacket
from repro.netsim.path import NetworkPath, TraversalResult
from repro.util.rng import RngStream, stable_hash
from repro.util.weeks import Week


@dataclass
class PathTemplate:
    """ECMP group of equivalent paths towards one destination group."""

    name: str
    variants: list[NetworkPath]
    # Weights must align with variants; default is uniform.
    weights: list[float] | None = None

    def __post_init__(self) -> None:
        if not self.variants:
            raise ValueError("a path template needs at least one variant")
        if self.weights is not None and len(self.weights) != len(self.variants):
            raise ValueError("weights must align with variants")

    def select(self, flow: FlowKey) -> NetworkPath:
        """Stable ECMP choice for a flow (same 5-tuple -> same path)."""
        if len(self.variants) == 1:
            return self.variants[0]
        bucket = stable_hash(self.name, flow.src, flow.dst, flow.sport, flow.dport, flow.proto)
        if self.weights is None:
            return self.variants[bucket % len(self.variants)]
        total = sum(self.weights)
        point = (bucket % 10_000) / 10_000.0 * total
        acc = 0.0
        for variant, weight in zip(self.variants, self.weights, strict=True):
            acc += weight
            if point < acc:
                return variant
        return self.variants[-1]


@dataclass
class _RouteEntry:
    """Epoch-ordered templates for one (vantage, destination-group) pair."""

    epochs: list[tuple[int, PathTemplate]] = field(default_factory=list)

    def add(self, start: Week | None, template: PathTemplate) -> None:
        key = start.ordinal() if start is not None else -1
        self.epochs.append((key, template))
        self.epochs.sort(key=lambda item: item[0])

    def at(self, week: Week) -> PathTemplate:
        keys = [key for key, _ in self.epochs]
        index = bisect_right(keys, week.ordinal()) - 1
        if index < 0:
            index = 0
        return self.epochs[index][1]


class Network:
    """Routing fabric keyed by (vantage id, destination group id).

    Routes may be installed eagerly via :meth:`register` or supplied by
    a *section loader* (:meth:`set_section_loader`): a callable invoked
    on a lookup miss with the vantage id, expected to register that
    vantage's routes and return True if it materialised anything.  The
    hook only runs on misses, so materialised routes pay no overhead.
    """

    def __init__(self, clock: Clock, rng: RngStream):
        self.clock = clock
        self.rng = rng
        self._routes: dict[tuple[str, str], _RouteEntry] = {}
        self._section_loader = None

    # ------------------------------------------------------------------
    def register(
        self,
        vantage_id: str,
        group_id: str,
        template: PathTemplate,
        *,
        start: Week | None = None,
    ) -> None:
        """Install a path template, optionally starting at a given week."""
        entry = self._routes.setdefault((vantage_id, group_id), _RouteEntry())
        entry.add(start, template)

    def set_section_loader(self, loader) -> None:
        """Install the lazy route-section hook (``loader(vantage_id) -> bool``)."""
        self._section_loader = loader

    def _load_section(self, vantage_id: str) -> bool:
        loader = self._section_loader
        return loader is not None and loader(vantage_id)

    def has_route(self, vantage_id: str, group_id: str) -> bool:
        if (vantage_id, group_id) in self._routes:
            return True
        if self._load_section(vantage_id):
            return (vantage_id, group_id) in self._routes
        return False

    def template_for(self, vantage_id: str, group_id: str, week: Week) -> PathTemplate:
        entry = self._routes.get((vantage_id, group_id))
        if entry is None and self._load_section(vantage_id):
            entry = self._routes.get((vantage_id, group_id))
        if entry is None:
            raise KeyError(f"no route from {vantage_id!r} to {group_id!r}")
        return entry.at(week)

    # ------------------------------------------------------------------
    def send(
        self,
        vantage_id: str,
        group_id: str,
        packet: IpPacket,
        week: Week,
    ) -> TraversalResult:
        """Send one packet from a vantage point towards a host group."""
        template = self.template_for(vantage_id, group_id, week)
        path = template.select(packet.flow_key)
        return path.traverse(packet, self.clock, self.rng)

    def path_for_flow(
        self, vantage_id: str, group_id: str, flow: FlowKey, week: Week
    ) -> NetworkPath:
        """The concrete ECMP member a given flow would take."""
        return self.template_for(vantage_id, group_id, week).select(flow)
