"""ICMP time-exceeded messages with packet quotes.

Tracebox-style measurements (paper §4.2) rely on routers quoting the
expired packet inside the ICMP error: the quote reflects the packet *as
it arrived at that router*, i.e. including all rewrites applied by the
upstream hops.  Comparing quotes from successive hops localises the
rewriting router.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.codepoints import ECN, ecn_from_tos
from repro.netsim.packet import IpPacket


@dataclass(frozen=True)
class QuotedPacket:
    """The portion of the expired packet echoed inside the ICMP error."""

    src: str
    dst: str
    tos: int
    ttl: int

    @property
    def ecn(self) -> ECN:
        return ecn_from_tos(self.tos)

    @classmethod
    def of(cls, packet: IpPacket) -> "QuotedPacket":
        return cls(src=packet.src, dst=packet.dst, tos=packet.tos, ttl=packet.ttl)


@dataclass(frozen=True)
class IcmpMessage:
    """An ICMP time-exceeded (type 11 / ICMPv6 type 3) error message."""

    router_address: str
    router_asn: int
    router_name: str
    hop_index: int  # 0-based position of the responding router on the path
    quote: QuotedPacket
