"""Typed parallel arrays over observation positions.

Two layers, split by what varies:

* :class:`DomainColumns` — everything the object path copied into every
  :class:`DomainObservation` that is in fact *week-invariant* for one
  ``(ip family, populations)`` scan plan: domain names, populations,
  list memberships, parked/resolved flags, resolved addresses, org
  attribution, site indices.  Built **once per plan** (and therefore
  once per campaign) from the plan's prototype tuples, alongside
  per-site :class:`SiteSegment` arrays that encode the attribution
  fan-out in rank order.
* :class:`ObservationStore` — the per-run layer: one result row per
  planned site plus the week's attempted-count per segment.  Recording
  a run is O(sites); the per-position index arrays that make
  ``position -> site row`` an O(1) lookup are built lazily, only when
  something actually reads per-domain data.

The store never copies scan results: rows reference the same
:class:`QuicConnectionResult` / :class:`TcpScanOutcome` objects the
site phase produced, which is what keeps store-backed runs
byte-identical to the object path.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.engine import ScanPlan, SitePlan
    from repro.quic.connection import QuicConnectionResult
    from repro.tcp.client import TcpScanOutcome

#: Org attributed to unresolved / site-less domains (matches the
#: ``DomainObservation.org`` default).
UNKNOWN_ORG = "<unknown>"

#: Sentinel row index: position is not attributed (no site / not
#: attempted this week).
NO_ROW = -1


class SiteSegment:
    """Week-invariant attribution arrays of one planned site.

    ``positions`` keeps the plan's scan order (the TCP fan-out order);
    ``rank_positions``/``sorted_ranks`` re-sort the same positions by
    QUIC adoption rank, so the set of positions attempting QUIC at a
    weekly share is the prefix ``rank_positions[:k]`` with ``k``
    found by bisection — no per-domain comparison at run time.
    """

    __slots__ = ("site_index", "positions", "rank_positions", "sorted_ranks")

    def __init__(
        self, site_index: int, positions: Sequence[int], ranks: Sequence[float]
    ):
        self.site_index = site_index
        self.positions = array("q", positions)
        by_rank = sorted(zip(ranks, positions, strict=True))
        self.sorted_ranks = array("d", (pair[0] for pair in by_rank))
        self.rank_positions = array("q", (pair[1] for pair in by_rank))

    def attempted_count(self, share: float) -> int:
        """How many of this site's domains want QUIC at ``share``.

        The trigger rule is ``rank < share`` (strict), hence
        ``bisect_left``.
        """
        return bisect_left(self.sorted_ranks, share)

    def quic_trigger_candidates(self) -> list[tuple[float, int]]:
        """Prefix-minimum records of the rank-sorted positions.

        A candidate ``(rank, position)`` means: once the weekly adoption
        share exceeds ``rank`` (strictly), ``position`` is the earliest
        position of this site wanting QUIC — until the next candidate's
        rank is exceeded too.  The site's QUIC exchange fires at its
        earliest eligible position, so the week's trigger is exactly the
        last candidate whose rank is below the share.  The scan engine
        merges these (week-invariant, position-sortable) candidates into
        its pre-ordered site-event stream instead of sorting events per
        week.
        """
        best: int | None = None
        candidates: list[tuple[float, int]] = []
        for rank, position in zip(self.sorted_ranks, self.rank_positions, strict=True):
            if best is None or position < best:
                best = position
                candidates.append((rank, position))
        return candidates


class DomainColumns:
    """Week-invariant per-position columns of one scan plan."""

    __slots__ = (
        "count",
        "domains",
        "populations",
        "lists",
        "parked",
        "resolved",
        "ips",
        "orgs",
        "site_indexes",
        "segments",
        "_population_positions",
    )

    def __init__(self, protos: Sequence[tuple], sites: Sequence["SitePlan"]):
        n = len(protos)
        self.count = n
        domains: list[str] = []
        populations: list[str] = []
        lists: list[tuple[str, ...]] = []
        parked = bytearray(n)
        resolved = bytearray(n)
        ips: list[str | None] = [None] * n
        orgs: list[str] = [UNKNOWN_ORG] * n
        site_indexes = array("q", (NO_ROW,)) * n
        for position, proto in enumerate(protos):
            domains.append(proto[0])
            populations.append(proto[1])
            lists.append(proto[2])
            if proto[3]:
                parked[position] = 1
            if proto[4]:
                resolved[position] = 1
                if len(proto) > 5:
                    ips[position] = proto[5]
                if len(proto) > 6:
                    orgs[position] = proto[6]
                    site_indexes[position] = proto[7]
        self.domains = domains
        self.populations = populations
        self.lists = lists
        self.parked = parked
        self.resolved = resolved
        self.ips = ips
        self.orgs = orgs
        self.site_indexes = site_indexes
        self.segments = [
            SiteSegment(site.site_index, site.positions, site.ranks) for site in sites
        ]
        self._population_positions: dict[str, array] = {}

    def population_positions(self, population: str) -> array:
        """Ascending positions of one population (cached).

        Ascending order matters: analysis fast paths iterate these and
        must visit domains in exactly the object path's order so that
        insertion-ordered aggregations (Counters, first-seen dicts)
        come out identical.
        """
        positions = self._population_positions.get(population)
        if positions is None:
            positions = array(
                "q",
                (
                    position
                    for position, pop in enumerate(self.populations)
                    if pop == population
                ),
            )
            self._population_positions[population] = positions
        return positions


def plan_columns(plan: "ScanPlan") -> DomainColumns:
    """The plan's :class:`DomainColumns`, built on first use.

    Cached on the plan itself, so every run of a campaign — and every
    engine sharing the plan cache — pays the column build exactly once.
    """
    columns = plan.columns
    if columns is None:
        columns = DomainColumns(plan.protos, plan.sites)
        plan.columns = columns
    return columns


class ObservationStore:
    """Columnar record of one weekly run.

    The site phase is recorded once per planned site
    (:meth:`record_site`, O(sites) per run); the per-position
    ``quic_row`` / ``tcp_row`` index arrays — *attribution as array
    indexing* — materialise lazily on first per-domain access.  A row
    value of :data:`NO_ROW` means "no result at this position", which
    for QUIC doubles as "not attempted" (exactly the object path's
    ``quic_attempted`` semantics: attempted iff the site is QUIC-capable
    and the domain's rank is under this week's adoption share).
    """

    __slots__ = (
        "columns",
        "week",
        "vantage_id",
        "ip_version",
        "share",
        "quic_results",
        "quic_counts",
        "tcp_results",
        "plugin_columns",
        "_quic_row",
        "_tcp_row",
    )

    def __init__(
        self,
        columns: DomainColumns,
        *,
        week,
        vantage_id: str,
        ip_version: int,
        share: float,
    ):
        self.columns = columns
        self.week = week
        self.vantage_id = vantage_id
        self.ip_version = ip_version
        self.share = share
        segment_count = len(columns.segments)
        #: Per-segment QUIC result (None: not capable / nothing attempted).
        self.quic_results: list["QuicConnectionResult | None"] = [None] * segment_count
        #: Per-segment count of attempted positions this week.
        self.quic_counts = array("q", bytes(8 * segment_count))
        #: Per-segment TCP result (None unless the run included TCP).
        self.tcp_results: list["TcpScanOutcome | None"] = [None] * segment_count
        #: Per-plugin measurement columns: plugin name -> field name ->
        #: one value per site segment (None where the plugin produced
        #: no row).  Filled by :meth:`add_plugin_columns`.
        self.plugin_columns: dict[str, dict[str, list]] = {}
        self._quic_row: array | None = None
        self._tcp_row: array | None = None

    # ------------------------------------------------------------------
    # Recording (the attribution phase)
    # ------------------------------------------------------------------
    def record_site(
        self,
        segment_index: int,
        *,
        quic_capable: bool,
        quic: "QuicConnectionResult | None",
        tcp: "TcpScanOutcome | None",
    ) -> None:
        """Record one site's week: a couple of stores and one bisect."""
        if quic_capable:
            self.quic_counts[segment_index] = self.columns.segments[
                segment_index
            ].attempted_count(self.share)
            self.quic_results[segment_index] = quic
        if tcp is not None:
            self.tcp_results[segment_index] = tcp

    def add_plugin_columns(self, name: str, columns: dict[str, list]) -> None:
        """Attach one plugin's segment-aligned measurement columns.

        ``columns`` maps field name to one value per site segment (in
        segment order, ``None`` where the plugin produced no row for
        that site).  Column lengths must match the segment count.
        """
        segment_count = len(self.columns.segments)
        for field_name, values in columns.items():
            if len(values) != segment_count:
                raise ValueError(
                    f"plugin {name!r} column {field_name!r} has "
                    f"{len(values)} values for {segment_count} segments"
                )
        self.plugin_columns[name] = columns

    # ------------------------------------------------------------------
    # Lazy per-position index
    # ------------------------------------------------------------------
    def _build_rows(self) -> None:
        n = self.columns.count
        quic_row = array("q", (NO_ROW,)) * n
        tcp_row = array("q", (NO_ROW,)) * n
        quic_counts = self.quic_counts
        tcp_results = self.tcp_results
        for segment_index, segment in enumerate(self.columns.segments):
            attempted = quic_counts[segment_index]
            if attempted:
                for position in segment.rank_positions[:attempted]:
                    quic_row[position] = segment_index
            if tcp_results[segment_index] is not None:
                for position in segment.positions:
                    tcp_row[position] = segment_index
        self._quic_row = quic_row
        self._tcp_row = tcp_row

    @property
    def quic_row(self) -> array:
        """position -> segment row of its QUIC result (:data:`NO_ROW` if none)."""
        if self._quic_row is None:
            self._build_rows()
        return self._quic_row

    @property
    def tcp_row(self) -> array:
        """position -> segment row of its TCP result (:data:`NO_ROW` if none)."""
        if self._tcp_row is None:
            self._build_rows()
        return self._tcp_row

    # ------------------------------------------------------------------
    # Per-position accessors (what the lazy views read)
    # ------------------------------------------------------------------
    def quic_at(self, position: int) -> "QuicConnectionResult | None":
        row = self.quic_row[position]
        return self.quic_results[row] if row >= 0 else None

    def quic_attempted_at(self, position: int) -> bool:
        return self.quic_row[position] >= 0

    def tcp_at(self, position: int) -> "TcpScanOutcome | None":
        row = self.tcp_row[position]
        return self.tcp_results[row] if row >= 0 else None

    # ------------------------------------------------------------------
    # Column-native helpers (analysis fast paths)
    # ------------------------------------------------------------------
    def quic_flag_rows(self) -> list[tuple[bool, bool, bool]]:
        """Per-segment ``(available, mirroring, use)`` flags.

        One tuple per site row instead of one property chase per domain
        — the fan-in that makes column-native aggregation cheap.
        """
        return [
            (False, False, False)
            if result is None
            else (result.connected, result.mirroring, result.server_set_ect)
            for result in self.quic_results
        ]

    def all_positions(self) -> range:
        return range(self.columns.count)

    def positions_for(self, population: str) -> array:
        return self.columns.population_positions(population)

    def iter_quic_positions(self, positions: Iterable[int] | None = None):
        """Yield ``(position, result)`` for attributed QUIC positions."""
        quic_row = self.quic_row
        quic_results = self.quic_results
        if positions is None:
            positions = range(self.columns.count)
        for position in positions:
            row = quic_row[position]
            if row >= 0:
                yield position, quic_results[row]
