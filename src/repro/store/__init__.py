"""Columnar campaign store: the results layer of the scan pipeline.

The measurement loop (``repro.pipeline``) produces one result per
*site*; the paper's analyses consume results per *domain*.  Bridging
the two used to mean materialising one :class:`DomainObservation`
object per domain per weekly run — ~40 % of a serial campaign week.
This package stores a run the way large measurement platforms do
(PathSpider's typed result records, zgrab2's output pipeline): as
typed parallel arrays over observation positions, with the domain
dimension represented by index arrays computed at plan build.

* :mod:`repro.store.columns` — :class:`DomainColumns` (week-invariant
  per-position columns + per-site attribution segments, built once per
  scan plan) and :class:`ObservationStore` (the per-run record of the
  site phase: one result row per site, lazy position→row index arrays).
* :mod:`repro.store.views` — :class:`ObservationView`, a lazy,
  field-compatible stand-in for :class:`DomainObservation`;
  :class:`StoreObservations`, the sequence view analysis iterates; and
  :class:`StoreWeeklyRun`, the store-backed weekly run.
* :mod:`repro.store.codec` — a compact binary codec for shard result
  batches, so fork-pool workers ship one buffer per shard instead of
  pickled object lists.

Store-backed runs are golden-identical to the object path (pinned by
``tests/test_store_golden.py``) and are the default for campaigns.
"""

from repro.store.codec import decode_shard_results, encode_shard_results
from repro.store.columns import DomainColumns, ObservationStore, SiteSegment, plan_columns
from repro.store.views import (
    ObservationView,
    StoreObservations,
    StoreWeeklyRun,
    store_slice,
)

__all__ = [
    "DomainColumns",
    "ObservationStore",
    "SiteSegment",
    "plan_columns",
    "ObservationView",
    "StoreObservations",
    "StoreWeeklyRun",
    "store_slice",
    "encode_shard_results",
    "decode_shard_results",
]
