"""Compact binary codec for shard result batches.

The fork-pool executor used to return per-shard *lists of result
objects* — every :class:`QuicConnectionResult` pickled with its nested
counters, enums and header strings, per site, per week.  This codec
marshals one shard's results into **one flat buffer**: varint-packed
fields, a deduplicating string table (server headers repeat massively
across sites), IEEE-754 doubles for the elapsed clock times (bit-exact,
the merged shared clock must land on the same float), and enums by
index.

The format is internal wire format, not an archive format: both ends
are the same build of this module, so there is no cross-version
schema negotiation — just a magic/version prefix to fail fast on
mismatched buffers.

Entries are ``(site_index, kind, result, elapsed)`` exactly as
:meth:`ShardedScanEngine._run_shard` produces them; decoding yields
objects that compare equal (``==``) to the originals, which the codec
round-trip tests and the sharded golden tests pin.

Version 2 adds a fixed three-varint header field carrying the worker's
exchange replay-cache counters (hits, misses, uncacheable) for the
encoded shard, so fork-pool runs report the same cache accounting as
in-process executors.  :func:`decode_shard_results` keeps returning
just the entries; :func:`decode_shard_payload` returns both.

Version 3 wraps every buffer in a **checksummed frame** —
``magic + body length + CRC32 + body`` (:func:`frame_payload` /
:func:`unframe_payload`) — shared with the world snapshot codec and the
campaign checkpoint files.  Any truncation or bit flip of a framed
buffer raises the typed :class:`CodecCorruption` before a single body
byte is interpreted: corrupted bytes never decode to plausible-but-
wrong results (crashed fork-pool workers and torn checkpoint files can
produce exactly such buffers; docs/robustness.md).

Version 4 adds a length-prefixed **observability blob** after the
cache-stat varints: worker-side spans and metric deltas encoded by
:mod:`repro.obs.spans`, riding inside the same CRC-checked frame so
telemetry corruption is caught by the exact machinery that guards the
results.  The blob is opaque to this module (empty when the run is
uninstrumented); :func:`decode_shard_payload` keeps its two-tuple
shape and :func:`decode_shard_payload_obs` exposes the blob.

Measurement-plugin variants (``repro.plugins``) add a fourth entry
tag — :data:`_RESULT_ROW` — carrying a typed per-flow value tuple
(``None`` / bool / int / float / string-table ref per field) instead
of a full result object.  Plugin rows are what variants contribute to
the store, so shipping the row rather than the raw result keeps shard
and ticket frames small.  The tag is additive: buffers produced by
default (``ecn``-only) runs contain no row entries and remain
byte-identical to pre-plugin buffers, which keeps existing campaign
checkpoints valid.
"""

from __future__ import annotations

import struct
from typing import Sequence

from repro.core.counters import EcnCounts
from repro.core.validation import ValidationOutcome
from repro.quic.connection import QuicConnectionResult
from repro.quic.varint import decode_varint, encode_varint
from repro.quic.versions import QuicVersion
from repro.tcp.client import TcpScanOutcome
from repro.tcp.ebpf import CodepointCounter
from repro.util.framing import (
    CodecCorruption,
    CodecError,
    frame_payload,
    unframe_payload,
)
from repro.util.magics import SHARD_RESULT_MAGIC

__all__ = [
    "MAGIC",
    "CodecCorruption",
    "CodecError",
    "decode_shard_payload",
    "decode_shard_payload_obs",
    "decode_shard_results",
    "encode_shard_results",
    "frame_payload",
    "unframe_payload",
]

#: Buffer prefix: codec name + format version (central registry:
#: :mod:`repro.util.magics`).
MAGIC = SHARD_RESULT_MAGIC


_RESULT_NONE = 0
_RESULT_QUIC = 1
_RESULT_TCP = 2
_RESULT_ROW = 3

# Plugin-row value tags (one per tuple element).
_V_NONE = 0
_V_FALSE = 1
_V_TRUE = 2
_V_INT = 3  # non-negative varint
_V_NEG_INT = 4  # varint of -(value + 1)
_V_FLOAT = 5  # IEEE-754 double
_V_STR = 6  # string-table ref

_OUTCOMES = tuple(ValidationOutcome)
_OUTCOME_INDEX = {outcome: index for index, outcome in enumerate(_OUTCOMES)}
_VERSIONS = tuple(QuicVersion)
_VERSION_INDEX = {version: index for index, version in enumerate(_VERSIONS)}

_DOUBLE = struct.Struct(">d")

# QUIC flag bits (byte 1)
_Q_CONNECTED = 1 << 0
_Q_MIRRORING = 1 << 1
_Q_SET_ECT = 1 << 2
_Q_HAS_VERSION = 1 << 3
_Q_HAS_STATUS = 1 << 4
_Q_HAS_FINGERPRINT = 1 << 5
_Q_HAS_MIRRORED = 1 << 6
# QUIC flag bits (byte 2: optional strings)
_Q_HAS_SERVER = 1 << 0
_Q_HAS_VIA = 1 << 1
_Q_HAS_ALT_SVC = 1 << 2
_Q_HAS_ERROR = 1 << 3

# TCP flag bits
_T_CONNECTED = 1 << 0
_T_NEGOTIATED = 1 << 1
_T_CE_MIRRORED = 1 << 2
_T_SET_ECT = 1 << 3
_T_HAS_STATUS = 1 << 4
_T_HAS_SERVER = 1 << 5
_T_HAS_ERROR = 1 << 6


class StringTable:
    """Deduplicating encode-side string pool.

    Shared codec primitive: shard-result buffers and world snapshots
    (:mod:`repro.web.snapshot`) both marshal repeated strings as varint
    references into one table written ahead of the entries.
    """

    __slots__ = ("strings", "index")

    def __init__(self) -> None:
        self.strings: list[str] = []
        self.index: dict[str, int] = {}

    def ref(self, value: str) -> int:
        ref = self.index.get(value)
        if ref is None:
            ref = len(self.strings)
            self.strings.append(value)
            self.index[value] = ref
        return ref


def encode_string_table(table: StringTable) -> bytes:
    """Marshal a string table: count, then length-prefixed UTF-8 entries."""
    out = bytearray(encode_varint(len(table.strings)))
    for value in table.strings:
        raw = value.encode("utf-8")
        out += encode_varint(len(raw))
        out += raw
    return bytes(out)


def decode_string_table(buf: bytes, offset: int) -> tuple[list[str], int]:
    """Inverse of :func:`encode_string_table`; returns (strings, offset)."""
    string_count, offset = decode_varint(buf, offset)
    strings: list[str] = []
    for _ in range(string_count):
        length, offset = decode_varint(buf, offset)
        # bytes() so memoryview callers (zero-copy world decode) work;
        # a slice of bytes is already a fresh object, so no extra copy.
        strings.append(bytes(buf[offset : offset + length]).decode("utf-8"))
        offset += length
    return strings, offset


def _encode_quic(result: QuicConnectionResult, out: bytearray, table: StringTable) -> None:
    flags = 0
    if result.connected:
        flags |= _Q_CONNECTED
    if result.mirroring:
        flags |= _Q_MIRRORING
    if result.server_set_ect:
        flags |= _Q_SET_ECT
    if result.version is not None:
        flags |= _Q_HAS_VERSION
    if result.response_status is not None:
        flags |= _Q_HAS_STATUS
    if result.transport_fingerprint is not None:
        flags |= _Q_HAS_FINGERPRINT
    if result.mirrored_counts is not None:
        flags |= _Q_HAS_MIRRORED
    string_flags = 0
    if result.server_header is not None:
        string_flags |= _Q_HAS_SERVER
    if result.via_header is not None:
        string_flags |= _Q_HAS_VIA
    if result.alt_svc is not None:
        string_flags |= _Q_HAS_ALT_SVC
    if result.error is not None:
        string_flags |= _Q_HAS_ERROR
    out.append(flags)
    out.append(string_flags)
    if result.version is not None:
        out.append(_VERSION_INDEX[result.version])
    if result.response_status is not None:
        out += encode_varint(result.response_status)
    if result.transport_fingerprint is not None:
        out += encode_varint(len(result.transport_fingerprint))
        for param, length in result.transport_fingerprint:
            out += encode_varint(param)
            out += encode_varint(length)
    out.append(_OUTCOME_INDEX[result.validation_outcome])
    counts = result.inbound_ecn_counts
    out += encode_varint(counts.ect0)
    out += encode_varint(counts.ect1)
    out += encode_varint(counts.ce)
    out += encode_varint(result.marked_sent)
    out += encode_varint(result.marked_acked)
    out += encode_varint(result.greased_sent)
    if result.mirrored_counts is not None:
        mirrored = result.mirrored_counts
        out += encode_varint(mirrored.ect0)
        out += encode_varint(mirrored.ect1)
        out += encode_varint(mirrored.ce)
    if result.server_header is not None:
        out += encode_varint(table.ref(result.server_header))
    if result.via_header is not None:
        out += encode_varint(table.ref(result.via_header))
    if result.alt_svc is not None:
        out += encode_varint(table.ref(result.alt_svc))
    if result.error is not None:
        out += encode_varint(table.ref(result.error))


def _decode_quic(
    buf: bytes, offset: int, strings: list[str]
) -> tuple[QuicConnectionResult, int]:
    flags = buf[offset]
    string_flags = buf[offset + 1]
    offset += 2
    version = None
    if flags & _Q_HAS_VERSION:
        version = _VERSIONS[buf[offset]]
        offset += 1
    status = None
    if flags & _Q_HAS_STATUS:
        status, offset = decode_varint(buf, offset)
    fingerprint = None
    if flags & _Q_HAS_FINGERPRINT:
        count, offset = decode_varint(buf, offset)
        pairs = []
        for _ in range(count):
            param, offset = decode_varint(buf, offset)
            length, offset = decode_varint(buf, offset)
            pairs.append((param, length))
        fingerprint = tuple(pairs)
    outcome = _OUTCOMES[buf[offset]]
    offset += 1
    ect0, offset = decode_varint(buf, offset)
    ect1, offset = decode_varint(buf, offset)
    ce, offset = decode_varint(buf, offset)
    marked_sent, offset = decode_varint(buf, offset)
    marked_acked, offset = decode_varint(buf, offset)
    greased_sent, offset = decode_varint(buf, offset)
    mirrored = None
    if flags & _Q_HAS_MIRRORED:
        m_ect0, offset = decode_varint(buf, offset)
        m_ect1, offset = decode_varint(buf, offset)
        m_ce, offset = decode_varint(buf, offset)
        mirrored = EcnCounts(m_ect0, m_ect1, m_ce)
    server_header = via_header = alt_svc = error = None
    if string_flags & _Q_HAS_SERVER:
        ref, offset = decode_varint(buf, offset)
        server_header = strings[ref]
    if string_flags & _Q_HAS_VIA:
        ref, offset = decode_varint(buf, offset)
        via_header = strings[ref]
    if string_flags & _Q_HAS_ALT_SVC:
        ref, offset = decode_varint(buf, offset)
        alt_svc = strings[ref]
    if string_flags & _Q_HAS_ERROR:
        ref, offset = decode_varint(buf, offset)
        error = strings[ref]
    result = QuicConnectionResult(
        connected=bool(flags & _Q_CONNECTED),
        version=version,
        server_header=server_header,
        via_header=via_header,
        alt_svc=alt_svc,
        response_status=status,
        transport_fingerprint=fingerprint,
        mirroring=bool(flags & _Q_MIRRORING),
        validation_outcome=outcome,
        server_set_ect=bool(flags & _Q_SET_ECT),
        inbound_ecn_counts=EcnCounts(ect0, ect1, ce),
        marked_sent=marked_sent,
        marked_acked=marked_acked,
        mirrored_counts=mirrored,
        greased_sent=greased_sent,
        error=error,
    )
    return result, offset


def _encode_tcp(outcome: TcpScanOutcome, out: bytearray, table: StringTable) -> None:
    flags = 0
    if outcome.connected:
        flags |= _T_CONNECTED
    if outcome.ecn_negotiated:
        flags |= _T_NEGOTIATED
    if outcome.ce_mirrored:
        flags |= _T_CE_MIRRORED
    if outcome.server_set_ect:
        flags |= _T_SET_ECT
    if outcome.response_status is not None:
        flags |= _T_HAS_STATUS
    if outcome.server_header is not None:
        flags |= _T_HAS_SERVER
    if outcome.error is not None:
        flags |= _T_HAS_ERROR
    out.append(flags)
    if outcome.response_status is not None:
        out += encode_varint(outcome.response_status)
    counter = outcome.inbound
    out += encode_varint(counter.not_ect)
    out += encode_varint(counter.ect0)
    out += encode_varint(counter.ect1)
    out += encode_varint(counter.ce)
    out += encode_varint(counter.ece_flags)
    out += encode_varint(counter.cwr_flags)
    if outcome.server_header is not None:
        out += encode_varint(table.ref(outcome.server_header))
    if outcome.error is not None:
        out += encode_varint(table.ref(outcome.error))


def _decode_tcp(buf: bytes, offset: int, strings: list[str]) -> tuple[TcpScanOutcome, int]:
    flags = buf[offset]
    offset += 1
    status = None
    if flags & _T_HAS_STATUS:
        status, offset = decode_varint(buf, offset)
    not_ect, offset = decode_varint(buf, offset)
    ect0, offset = decode_varint(buf, offset)
    ect1, offset = decode_varint(buf, offset)
    ce, offset = decode_varint(buf, offset)
    ece_flags, offset = decode_varint(buf, offset)
    cwr_flags, offset = decode_varint(buf, offset)
    server_header = error = None
    if flags & _T_HAS_SERVER:
        ref, offset = decode_varint(buf, offset)
        server_header = strings[ref]
    if flags & _T_HAS_ERROR:
        ref, offset = decode_varint(buf, offset)
        error = strings[ref]
    outcome = TcpScanOutcome(
        connected=bool(flags & _T_CONNECTED),
        ecn_negotiated=bool(flags & _T_NEGOTIATED),
        ce_mirrored=bool(flags & _T_CE_MIRRORED),
        server_set_ect=bool(flags & _T_SET_ECT),
        response_status=status,
        server_header=server_header,
        inbound=CodepointCounter(
            not_ect=not_ect,
            ect0=ect0,
            ect1=ect1,
            ce=ce,
            ece_flags=ece_flags,
            cwr_flags=cwr_flags,
        ),
        error=error,
    )
    return outcome, offset


def _encode_row(row: tuple[object, ...], out: bytearray, table: StringTable) -> None:
    out += encode_varint(len(row))
    for value in row:
        if value is None:
            out.append(_V_NONE)
        elif value is False:
            out.append(_V_FALSE)
        elif value is True:
            out.append(_V_TRUE)
        elif isinstance(value, int):
            if value >= 0:
                out.append(_V_INT)
                out += encode_varint(value)
            else:
                out.append(_V_NEG_INT)
                out += encode_varint(-value - 1)
        elif isinstance(value, float):
            out.append(_V_FLOAT)
            out += _DOUBLE.pack(value)
        elif isinstance(value, str):
            out.append(_V_STR)
            out += encode_varint(table.ref(value))
        else:
            raise TypeError(
                f"cannot encode plugin row value of type {type(value).__name__}"
            )


def _decode_row(
    buf: bytes, offset: int, strings: list[str]
) -> tuple[tuple[object, ...], int]:
    count, offset = decode_varint(buf, offset)
    values: list[object] = []
    for _ in range(count):
        tag = buf[offset]
        offset += 1
        if tag == _V_NONE:
            values.append(None)
        elif tag == _V_FALSE:
            values.append(False)
        elif tag == _V_TRUE:
            values.append(True)
        elif tag == _V_INT:
            value, offset = decode_varint(buf, offset)
            values.append(value)
        elif tag == _V_NEG_INT:
            value, offset = decode_varint(buf, offset)
            values.append(-value - 1)
        elif tag == _V_FLOAT:
            (value,) = _DOUBLE.unpack_from(buf, offset)
            offset += 8
            values.append(value)
        elif tag == _V_STR:
            ref, offset = decode_varint(buf, offset)
            values.append(strings[ref])
        else:
            raise ValueError(f"unknown plugin row value tag {tag}")
    return tuple(values), offset


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def encode_shard_results(
    entries: Sequence[tuple[int, int, object, float]],
    *,
    cache_stats: tuple[int, int, int] = (0, 0, 0),
    obs: bytes = b"",
) -> bytes:
    """Marshal one shard's ``(site, kind, result, elapsed)`` entries.

    One checksummed frame per shard: header (including the shard's
    exchange-cache ``(hits, misses, uncacheable)`` counters and an
    opaque length-prefixed ``obs`` telemetry blob), deduplicated string
    table, then the packed entries.  ``elapsed`` round-trips bit-exactly.
    """
    table = StringTable()
    body = bytearray()
    for site_index, kind, result, elapsed in entries:
        body += encode_varint(site_index)
        body.append(kind)
        body += _DOUBLE.pack(elapsed)
        if result is None:
            body.append(_RESULT_NONE)
        elif isinstance(result, QuicConnectionResult):
            body.append(_RESULT_QUIC)
            _encode_quic(result, body, table)
        elif isinstance(result, TcpScanOutcome):
            body.append(_RESULT_TCP)
            _encode_tcp(result, body, table)
        elif isinstance(result, tuple):
            body.append(_RESULT_ROW)
            _encode_row(result, body, table)
        else:
            raise TypeError(
                f"cannot encode shard result of type {type(result).__name__}"
            )
    out = bytearray()
    for counter in cache_stats:
        out += encode_varint(counter)
    out += encode_varint(len(obs))
    out += obs
    out += encode_string_table(table)
    out += encode_varint(len(entries))
    out += body
    return frame_payload(MAGIC, bytes(out))


def decode_shard_payload_obs(
    buf: bytes,
) -> tuple[list[tuple[int, int, object, float]], tuple[int, int, int], bytes]:
    """Inverse of :func:`encode_shard_results`: (entries, cache stats, obs).

    The frame is verified first; a truncated or bit-flipped buffer
    raises :class:`CodecCorruption` without touching the body.  ``obs``
    is the opaque telemetry blob (``b""`` for uninstrumented shards) —
    decode it with :func:`repro.obs.spans.decode_obs_blob`.
    """
    # bytes() is a no-op on the already-bytes copy=True return; it only
    # narrows the static type from the codec's bytes|memoryview union.
    buf = bytes(unframe_payload(MAGIC, buf, what="shard result"))
    offset = 0
    hits, offset = decode_varint(buf, offset)
    misses, offset = decode_varint(buf, offset)
    uncacheable, offset = decode_varint(buf, offset)
    obs_len, offset = decode_varint(buf, offset)
    obs = bytes(buf[offset : offset + obs_len])
    offset += obs_len
    strings, offset = decode_string_table(buf, offset)
    entry_count, offset = decode_varint(buf, offset)
    entries: list[tuple[int, int, object, float]] = []
    for _ in range(entry_count):
        site_index, offset = decode_varint(buf, offset)
        kind = buf[offset]
        offset += 1
        (elapsed,) = _DOUBLE.unpack_from(buf, offset)
        offset += 8
        tag = buf[offset]
        offset += 1
        result: object | None
        if tag == _RESULT_NONE:
            result = None
        elif tag == _RESULT_QUIC:
            result, offset = _decode_quic(buf, offset, strings)
        elif tag == _RESULT_TCP:
            result, offset = _decode_tcp(buf, offset, strings)
        elif tag == _RESULT_ROW:
            result, offset = _decode_row(buf, offset, strings)
        else:
            raise ValueError(f"unknown shard result tag {tag}")
        entries.append((site_index, kind, result, elapsed))
    return entries, (hits, misses, uncacheable), obs


def decode_shard_payload(
    buf: bytes,
) -> tuple[list[tuple[int, int, object, float]], tuple[int, int, int]]:
    """(entries, cache stats) view of :func:`decode_shard_payload_obs`."""
    entries, stats, _obs = decode_shard_payload_obs(buf)
    return entries, stats


def decode_shard_results(buf: bytes) -> list[tuple[int, int, object, float]]:
    """Entries-only view of :func:`decode_shard_payload`."""
    return decode_shard_payload_obs(buf)[0]
