"""Lazy per-domain views over the columnar store.

:class:`ObservationView` is a two-slot flyweight exposing the full
:class:`~repro.scanner.results.DomainObservation` surface (fields and
derived properties) by reading the store's columns — nothing is copied,
nothing is materialised until a field is actually read.  Analysis code
that iterates observations works unchanged; analysis hot paths detect
store backing via :func:`store_slice` and skip the views entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence, overload

from repro.pipeline.runs import WeeklyRun
from repro.scanner.results import DomainObservation, ObservationDerived
from repro.store.columns import ObservationStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.quic.connection import QuicConnectionResult
    from repro.tcp.client import TcpScanOutcome


class ObservationView(ObservationDerived):
    """One domain's observation, read on demand from the store.

    Field-compatible with :class:`DomainObservation` (same names, same
    values, same derived properties via the shared
    :class:`ObservationDerived` base) but never holds per-domain state:
    every attribute read is column indexing.
    """

    __slots__ = ("store", "position")

    def __init__(self, store: ObservationStore, position: int):
        self.store = store
        self.position = position

    # -- plan columns (week-invariant) ---------------------------------
    @property
    def domain(self) -> str:
        return self.store.columns.domains[self.position]

    @property
    def population(self) -> str:
        return self.store.columns.populations[self.position]

    @property
    def lists(self) -> tuple[str, ...]:
        return self.store.columns.lists[self.position]

    @property
    def parked(self) -> bool:
        return bool(self.store.columns.parked[self.position])

    @property
    def resolved(self) -> bool:
        return bool(self.store.columns.resolved[self.position])

    @property
    def ip(self) -> str | None:
        return self.store.columns.ips[self.position]

    @property
    def org(self) -> str:
        return self.store.columns.orgs[self.position]

    @property
    def site_index(self) -> int:
        return self.store.columns.site_indexes[self.position]

    # -- run columns (per week) ----------------------------------------
    @property
    def quic_attempted(self) -> bool:
        return self.store.quic_attempted_at(self.position)

    @property
    def quic(self) -> "QuicConnectionResult | None":
        return self.store.quic_at(self.position)

    @property
    def tcp(self) -> "TcpScanOutcome | None":
        return self.store.tcp_at(self.position)

    # ------------------------------------------------------------------
    def materialize(self) -> DomainObservation:
        """An eager :class:`DomainObservation` copy of this view."""
        return DomainObservation(
            domain=self.domain,
            population=self.population,
            lists=self.lists,
            parked=self.parked,
            resolved=self.resolved,
            ip=self.ip,
            org=self.org,
            site_index=self.site_index,
            quic_attempted=self.quic_attempted,
            quic=self.quic,
            tcp=self.tcp,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ObservationView(domain={self.domain!r}, position={self.position}, "
            f"quic_attempted={self.quic_attempted})"
        )


class StoreObservations(Sequence):
    """Sequence facade over store positions, yielding lazy views.

    ``positions=None`` covers every position of the run (the
    ``run.observations`` shape); a positions array restricts the view
    to a population slice.  Iteration order is always ascending
    position order — the object path's order.
    """

    __slots__ = ("store", "positions")

    def __init__(self, store: ObservationStore, positions: Sequence[int] | None = None):
        self.store = store
        self.positions = positions

    def __len__(self) -> int:
        if self.positions is None:
            return self.store.columns.count
        return len(self.positions)

    @overload
    def __getitem__(self, index: int) -> ObservationView: ...

    @overload
    def __getitem__(self, index: slice) -> list[ObservationView]: ...

    def __getitem__(self, index):
        if isinstance(index, slice):
            if self.positions is None:
                return [
                    ObservationView(self.store, position)
                    for position in range(*index.indices(self.store.columns.count))
                ]
            return [
                ObservationView(self.store, position)
                for position in self.positions[index]
            ]
        if self.positions is None:
            count = self.store.columns.count
            if index < 0:
                index += count
            if not 0 <= index < count:
                raise IndexError(index)
            return ObservationView(self.store, index)
        return ObservationView(self.store, self.positions[index])

    def __iter__(self) -> Iterator[ObservationView]:
        store = self.store
        if self.positions is None:
            for position in range(store.columns.count):
                yield ObservationView(store, position)
        else:
            for position in self.positions:
                yield ObservationView(store, position)


def store_slice(
    observations,
) -> tuple[ObservationStore, Sequence[int]] | None:
    """``(store, positions)`` when ``observations`` is store-backed.

    The hook analysis fast paths use to go column-native; returns
    ``None`` for plain observation lists (the compatibility path).
    """
    if isinstance(observations, StoreObservations):
        store = observations.store
        positions = observations.positions
        if positions is None:
            positions = range(store.columns.count)
        return store, positions
    return None


@dataclass
class StoreWeeklyRun(WeeklyRun):
    """A :class:`WeeklyRun` whose observations live in the store.

    ``observations`` is a :class:`StoreObservations` sequence (lazy
    views), and the two per-run query helpers are overridden with
    column-native implementations.  Everything else — site records,
    traces, the trace sampler — is identical to the object path.
    """

    store: ObservationStore | None = None

    def attach(self, store: ObservationStore) -> None:
        self.store = store
        self.observations = StoreObservations(store)

    # ------------------------------------------------------------------
    def quic_domains(self) -> list[ObservationView]:
        store = self.store
        views = []
        for position, result in store.iter_quic_positions():
            if result is not None and result.connected:
                views.append(ObservationView(store, position))
        return views

    def observations_for(self, population: str) -> StoreObservations:
        store = self.store
        return StoreObservations(store, store.positions_for(population))
