"""Server-side QUIC engine with configurable ECN mirroring quirks.

The engine implements an honest, minimal QUIC responder (version check,
per-space packet numbering, ACK generation, HTTP response delivery); the
:class:`MirrorQuirk` enumerates every way the paper found real stacks to
deviate when echoing ECN counters:

* ``CORRECT``        — count what arrived (quic-go, s2n-quic, lsquic with
  the ECN flag on).
* ``NONE``           — never echo counters (Cloudflare/Fastly/Google own
  properties; pre-4.0 lsquic on v1).
* ``PN_SPACE_RESET`` — mirror during the handshake but lose the setting
  on the switch to 1-RTT (lsquic with the ECN flag off; the paper's
  root cause for most *undercount* failures, §7.3).
* ``HALVED``         — echo only every other marked packet (observed
  undercounting at Google's proxy).
* ``SWAPPED``        — report ECT(0) arrivals in the ECT(1) counter
  (implementor confusion, or internal DCTCP markings leaking out).
* ``ALL_CE``         — count every arriving packet as CE (Google's India
  experiment; also what a CE-marking-all path produces).
* ``DECREASING``     — counters reset mid-connection (non-monotonic).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Callable

from repro.core.codepoints import ECN
from repro.core.counters import EcnCounts
from repro.http.messages import HttpResponse
from repro.netsim.packet import IpPacket, UdpPayload
from repro.quic.frames import (
    AckFrame,
    ConnectionCloseFrame,
    CryptoFrame,
    Frame,
    HandshakeDoneFrame,
    StreamFrame,
)
from repro.quic.packets import (
    LongHeaderPacket,
    PacketNumberSpace,
    PacketType,
    QuicPacket,
    ShortHeaderPacket,
    VersionNegotiationPacket,
)
from repro.quic.transport_params import GENERIC_PARAMS, TransportParameters
from repro.quic.versions import QuicVersion


class MirrorQuirk(enum.Enum):
    CORRECT = "correct"
    NONE = "none"
    PN_SPACE_RESET = "pn_space_reset"
    HALVED = "halved"
    SWAPPED = "swapped"
    ALL_CE = "all_ce"
    DECREASING = "decreasing"

    # Members are singletons; identity hash is consistent and avoids
    # Enum's name-hash in per-packet accounting dict lookups.
    __hash__ = object.__hash__


@dataclass(frozen=True)
class StackBehavior:
    """The externally visible behaviour of one server stack at one week."""

    stack_label: str
    version: QuicVersion = QuicVersion.V1
    server_header: str | None = None
    via_header: str | None = None
    transport_params: TransportParameters = GENERIC_PARAMS
    mirror_quirk: MirrorQuirk = MirrorQuirk.NONE
    use_ecn: bool = False
    quic_enabled: bool = True

    def with_quirk(self, quirk: MirrorQuirk) -> "StackBehavior":
        return replace(self, mirror_quirk=quirk)


_SPACES = tuple(PacketNumberSpace)
_ZERO_COUNTS = EcnCounts()
_SERVER_SCID = b"\x33" * 8
_SERVER_HELLO = CryptoFrame(0, b"server-hello")


class _ConnState:
    """Per-connection server state (we model one connection per scan).

    A plain slotted class with a hand-rolled ``__init__``: one of these
    is allocated per scanned site per week, and the dataclass
    default-factory lambdas it replaced showed up in campaign profiles.
    """

    __slots__ = (
        "received_pns",
        "counts",
        "marked_arrivals",
        "ect_arrivals",
        "total_arrivals",
        "sent_pns",
        "handshake_done_sent",
        "request_buffer",
        "request_complete",
        "app_acks_sent",
    )

    def __init__(self) -> None:
        self.received_pns: dict[PacketNumberSpace, set[int]] = {
            space: set() for space in _SPACES
        }
        self.counts: dict[PacketNumberSpace, EcnCounts] = dict.fromkeys(
            _SPACES, _ZERO_COUNTS
        )
        self.marked_arrivals = 0  # quirk-internal counter (HALVED skip logic)
        self.ect_arrivals = 0  # packets that arrived with any ECN codepoint
        self.total_arrivals = 0
        self.sent_pns: dict[PacketNumberSpace, int] = dict.fromkeys(_SPACES, 0)
        self.handshake_done_sent = False
        self.request_buffer = bytearray()
        self.request_complete = False
        self.app_acks_sent = 0


class QuicServerStack:
    """A QUIC responder for scan traffic.

    ``response_factory`` maps the (already reassembled) request bytes to
    the :class:`HttpResponse` this host serves; hosts bind it to their
    domain content.
    """

    def __init__(
        self,
        behavior: StackBehavior,
        response_factory: Callable[[bytes], HttpResponse] | None = None,
        *,
        ip_version: int = 4,
    ):
        self.behavior = behavior
        self.response_factory = response_factory or (lambda _raw: HttpResponse())
        self.ip_version = ip_version
        self._conn = _ConnState()

    @property
    def observed_marked_arrivals(self) -> int:
        """Packets that arrived with an ECN codepoint set (any of ECT(0),
        ECT(1), CE) — the network-side ECN visibility a greasing client
        keeps alive even when validation disabled ECN (§9.3)."""
        return self._conn.ect_arrivals

    @property
    def observed_total_arrivals(self) -> int:
        return self._conn.total_arrivals

    # ------------------------------------------------------------------
    def handle_datagram(self, packet: IpPacket) -> list[IpPacket]:
        """Process one client datagram, produce response datagrams."""
        if not self.behavior.quic_enabled:
            return []
        payload = packet.payload
        if not isinstance(payload, UdpPayload):
            return []
        quic_packet = payload.data
        responses = self._handle_quic(quic_packet, packet.ecn)
        out: list[IpPacket] = []
        for response in responses:
            marking = self._egress_marking(response)
            out.append(
                IpPacket(
                    version=packet.version,
                    src=packet.dst,
                    dst=packet.src,
                    ttl=64,
                    tos=int(marking),
                    payload=UdpPayload(payload.dport, payload.sport, response),
                )
            )
        return out

    def _egress_marking(self, response: QuicPacket) -> ECN:
        if isinstance(response, VersionNegotiationPacket):
            return ECN.NOT_ECT
        return ECN.ECT0 if self.behavior.use_ecn else ECN.NOT_ECT

    # ------------------------------------------------------------------
    def _handle_quic(self, quic_packet: QuicPacket, ip_ecn: ECN) -> list[QuicPacket]:
        conn = self._conn
        if isinstance(quic_packet, VersionNegotiationPacket):
            return []
        if isinstance(quic_packet, LongHeaderPacket):
            if quic_packet.version is not self.behavior.version:
                return [
                    VersionNegotiationPacket(
                        dcid=quic_packet.scid,
                        scid=quic_packet.dcid,
                        supported_versions=(self.behavior.version,),
                    )
                ]
        space = quic_packet.pn_space
        first_time = quic_packet.packet_number not in conn.received_pns[space]
        conn.received_pns[space].add(quic_packet.packet_number)
        if first_time:
            self._record_arrival(space, ip_ecn)

        if isinstance(quic_packet, LongHeaderPacket):
            if quic_packet.packet_type is PacketType.INITIAL:
                return self._respond_initial(quic_packet)
            return self._respond_handshake(quic_packet)
        return self._respond_application(quic_packet)

    # ------------------------------------------------------------------
    # ECN accounting per quirk
    # ------------------------------------------------------------------
    def _record_arrival(self, space: PacketNumberSpace, ip_ecn: ECN) -> None:
        conn = self._conn
        conn.total_arrivals += 1
        if ip_ecn is not ECN.NOT_ECT:
            conn.ect_arrivals += 1
        quirk = self.behavior.mirror_quirk
        if quirk is MirrorQuirk.NONE:
            return
        if quirk is MirrorQuirk.ALL_CE:
            conn.counts[space] = conn.counts[space].with_observed(ECN.CE)
            return
        if ip_ecn is ECN.NOT_ECT:
            return
        conn.marked_arrivals += 1
        if quirk is MirrorQuirk.HALVED and conn.marked_arrivals % 2 == 0:
            return
        observed = ip_ecn
        if quirk is MirrorQuirk.SWAPPED:
            if ip_ecn is ECN.ECT0:
                observed = ECN.ECT1
            elif ip_ecn is ECN.ECT1:
                observed = ECN.ECT0
        conn.counts[space] = conn.counts[space].with_observed(observed)

    def _ecn_for_ack(self, space: PacketNumberSpace) -> EcnCounts | None:
        quirk = self.behavior.mirror_quirk
        if quirk is MirrorQuirk.NONE:
            return None
        if quirk is MirrorQuirk.PN_SPACE_RESET and space is PacketNumberSpace.APPLICATION:
            # lsquic bug: the ECN-read setting is not carried over to the
            # fully initialised connection; 1-RTT ACKs lose the counters.
            return None
        if quirk is MirrorQuirk.DECREASING and space is PacketNumberSpace.APPLICATION:
            # Buggy stack: counters reset after the first 1-RTT ACK, so a
            # later ACK reports *lower* cumulative values (non-monotonic).
            self._conn.app_acks_sent += 1
            if self._conn.app_acks_sent >= 2:
                return EcnCounts(0, 0, 0)
        counts = self._conn.counts[space]
        if counts.total == 0:
            return None
        return counts

    # ------------------------------------------------------------------
    # Flights
    # ------------------------------------------------------------------
    def _respond_initial(self, packet: LongHeaderPacket) -> list[QuicPacket]:
        conn = self._conn
        version = self.behavior.version
        server_initial = LongHeaderPacket(
            packet_type=PacketType.INITIAL,
            version=version,
            dcid=packet.scid,
            scid=_SERVER_SCID,
            packet_number=self._next_pn(PacketNumberSpace.INITIAL),
            frames=(
                AckFrame.for_packets(
                    conn.received_pns[PacketNumberSpace.INITIAL],
                    ecn=self._ecn_for_ack(PacketNumberSpace.INITIAL),
                ),
                _SERVER_HELLO,
            ),
        )
        handshake = LongHeaderPacket(
            packet_type=PacketType.HANDSHAKE,
            version=version,
            dcid=packet.scid,
            scid=_SERVER_SCID,
            packet_number=self._next_pn(PacketNumberSpace.HANDSHAKE),
            frames=_transport_params_frames(self.behavior.transport_params),
        )
        return [server_initial, handshake]

    def _respond_handshake(self, packet: LongHeaderPacket) -> list[QuicPacket]:
        conn = self._conn
        out: list[QuicPacket] = [
            LongHeaderPacket(
                packet_type=PacketType.HANDSHAKE,
                version=self.behavior.version,
                dcid=packet.scid,
                scid=_SERVER_SCID,
                packet_number=self._next_pn(PacketNumberSpace.HANDSHAKE),
                frames=(
                    AckFrame.for_packets(
                        conn.received_pns[PacketNumberSpace.HANDSHAKE],
                        ecn=self._ecn_for_ack(PacketNumberSpace.HANDSHAKE),
                    ),
                ),
            )
        ]
        if not conn.handshake_done_sent:
            conn.handshake_done_sent = True
            out.append(
                ShortHeaderPacket(
                    dcid=packet.scid,
                    packet_number=self._next_pn(PacketNumberSpace.APPLICATION),
                    frames=(HandshakeDoneFrame(),),
                )
            )
        return out

    def _respond_application(self, packet: ShortHeaderPacket) -> list[QuicPacket]:
        conn = self._conn
        request_finished = False
        for frame in packet.frames:
            if isinstance(frame, ConnectionCloseFrame):
                return []
            if isinstance(frame, StreamFrame):
                if isinstance(frame.data, bytes):
                    conn.request_buffer += frame.data
                if frame.fin:
                    request_finished = True
        ack = AckFrame.for_packets(
            conn.received_pns[PacketNumberSpace.APPLICATION],
            ecn=self._ecn_for_ack(PacketNumberSpace.APPLICATION),
        )
        frames: list[Frame] = [ack]
        if request_finished and not conn.request_complete:
            conn.request_complete = True
            response = self.response_factory(bytes(conn.request_buffer))
            response = self._apply_identity_headers(response)
            frames.append(StreamFrame(stream_id=0, offset=0, data=response, fin=True))
        return [
            ShortHeaderPacket(
                dcid=packet.dcid,
                packet_number=self._next_pn(PacketNumberSpace.APPLICATION),
                frames=tuple(frames),
            )
        ]

    def _apply_identity_headers(self, response: HttpResponse) -> HttpResponse:
        return _with_identity_headers(
            self.behavior.server_header, self.behavior.via_header, response
        )

    def _next_pn(self, space: PacketNumberSpace) -> int:
        pn = self._conn.sent_pns[space]
        self._conn.sent_pns[space] = pn + 1
        return pn


# ----------------------------------------------------------------------
# Week-invariant response construction (memoized across connections)
# ----------------------------------------------------------------------
@lru_cache(maxsize=256)
def _transport_params_frames(params) -> tuple[Frame, ...]:
    """The handshake CRYPTO flight for one parameter set.

    Transport parameters are week-invariant per stack behaviour, so the
    frame (and the varint-encoded blob inside it) is built once and the
    frozen tuple shared by every connection the stack answers.
    """
    from repro.quic.connection import embed_transport_params

    return (CryptoFrame(0, embed_transport_params(params)),)


@lru_cache(maxsize=1024)
def _with_identity_headers(
    server_header: str | None, via_header: str | None, response: HttpResponse
) -> HttpResponse:
    """Identity headers applied to a base response, memoized by value —
    sites sharing a stack profile serve value-identical responses."""
    headers = list(response.headers)
    if server_header is not None and response.server is None:
        headers.append(("server", server_header))
    if via_header is not None and response.via is None:
        headers.append(("via", via_header))
    return HttpResponse(status=response.status, headers=tuple(headers), body=response.body)
