"""Registry resolving stack-profile keys to week-specific behaviours.

The timeline constants encode the events the paper reconstructs in §5.3:

* LiteSpeed fleets upgraded from draft-27 (which mirrored ECN) to QUIC v1
  builds without ECN support around autumn 2022, and lsquic 4.0
  (released 2023-03-08, ~week 10) re-enabled mirroring — correctly for
  instances with the ECN flag on, and with the packet-number-space bug
  (undercounting) for instances with the flag off.
* Google's quiche showed ECN experiments in January (week 3) and March
  (week 9) 2023; its wix.com reverse proxy ("Pepyaka" behind
  ``via: 1.1 google``) began mirroring while Google's own properties
  never did.
* Amazon CloudFront enabled HTTP/3 (s2n-quic, correct ECN + use) in
  August 2022 (~week 32).
"""

from __future__ import annotations

from typing import Callable

from repro.quic.transport_params import (
    AMAZON_PARAMS,
    CLOUDFLARE_PARAMS,
    GENERIC_PARAMS,
    GOOGLE_PARAMS,
    LITESPEED_PARAMS,
)
from repro.quic.versions import QuicVersion
from repro.quicstacks.base import MirrorQuirk, StackBehavior
from repro.util.weeks import Week

# Timeline anchors (see module docstring).
LITESPEED_V1_UPGRADE = Week(2022, 35)
LITESPEED_LATE_UPGRADE = Week(2023, 11)
LSQUIC_40_RELEASE = Week(2023, 10)
GOOGLE_TEST_EARLY = Week(2023, 3)
GOOGLE_TEST_MAIN = Week(2023, 9)
CLOUDFRONT_H3_LAUNCH = Week(2022, 32)
MISC_CORRECT_START = Week(2022, 45)

BehaviorFactory = Callable[[Week], StackBehavior]


class StackRegistry:
    """Maps stack-profile keys to week-resolved behaviours."""

    def __init__(self) -> None:
        self._factories: dict[str, BehaviorFactory] = {}
        #: Factories are pure functions of the week, so resolved
        #: behaviours are memoized — one :class:`StackBehavior` object per
        #: (profile, week) instead of one per scanned site.  Identity-
        #: stable results also make behaviour-epoch comparisons cheap.
        self._resolved: dict[tuple[str, Week], StackBehavior] = {}

    def register(self, key: str, factory: BehaviorFactory) -> None:
        if key in self._factories:
            raise ValueError(f"duplicate stack profile: {key}")
        self._factories[key] = factory
        self._resolved.clear()

    def behavior(self, key: str, week: Week) -> StackBehavior:
        cache_key = (key, week)
        resolved = self._resolved.get(cache_key)
        if resolved is None:
            try:
                factory = self._factories[key]
            except KeyError:
                raise KeyError(f"unknown stack profile: {key}") from None
            resolved = self._resolved[cache_key] = factory(week)
        return resolved

    def keys(self) -> list[str]:
        return sorted(self._factories)


# ----------------------------------------------------------------------
# LiteSpeed (lsquic)
# ----------------------------------------------------------------------
def _lsquic(
    week: Week,
    *,
    upgrade_week: Week | None,
    flag_on: bool,
    gone_after_upgrade: bool = False,
    header: str | None = "LiteSpeed",
) -> StackBehavior:
    """Shared lsquic timeline: d27 (mirrors) -> v1 (no ECN) -> 4.0."""
    base = StackBehavior(
        stack_label="lsquic",
        server_header=header,
        transport_params=LITESPEED_PARAMS,
    )
    if upgrade_week is None or week < upgrade_week:
        # Draft-27-era lsquic mirrored ECN, but with the packet-number-
        # space bug already present: counters appear during the handshake
        # and vanish on 1-RTT — visible mirroring, failed validation.
        return StackBehavior(
            stack_label="lsquic",
            version=QuicVersion.DRAFT_27,
            server_header=header,
            transport_params=LITESPEED_PARAMS,
            mirror_quirk=MirrorQuirk.PN_SPACE_RESET,
        )
    if gone_after_upgrade:
        return StackBehavior(
            stack_label="lsquic",
            server_header=header,
            transport_params=LITESPEED_PARAMS,
            quic_enabled=False,
        )
    if week < LSQUIC_40_RELEASE:
        return base  # v1, no ECN mirroring before 4.0
    quirk = MirrorQuirk.CORRECT if flag_on else MirrorQuirk.PN_SPACE_RESET
    return base.with_quirk(quirk)


def _lsquic_v1(
    week: Week,
    *,
    flag_on: bool,
    header: str | None = "LiteSpeed",
    use_ecn: bool = False,
) -> StackBehavior:
    """Fleets that were already on v1: no ECN until 4.0, then flag-split.

    ``use_ecn`` turns on ECT marking of the server's own packets once the
    4.0 build is deployed (ECN *use* is independent of mirroring, §5.1).
    """
    if week < LSQUIC_40_RELEASE:
        return StackBehavior(
            stack_label="lsquic",
            server_header=header,
            transport_params=LITESPEED_PARAMS,
        )
    quirk = MirrorQuirk.CORRECT if flag_on else MirrorQuirk.PN_SPACE_RESET
    return StackBehavior(
        stack_label="lsquic",
        server_header=header,
        transport_params=LITESPEED_PARAMS,
        mirror_quirk=quirk,
        use_ecn=use_ecn,
    )


# ----------------------------------------------------------------------
# Google quiche / Pepyaka proxy
# ----------------------------------------------------------------------
def _pepyaka(week: Week, *, start: Week, quirk: MirrorQuirk) -> StackBehavior:
    base = StackBehavior(
        stack_label="google-quiche",
        server_header="Pepyaka",
        via_header="1.1 google",
        transport_params=GOOGLE_PARAMS,
    )
    if week < start:
        return base
    return base.with_quirk(quirk)


def _default_factories() -> dict[str, BehaviorFactory]:
    return {
        # -- LiteSpeed fleets ------------------------------------------
        "lsquic-d27-stay": lambda week: _lsquic(week, upgrade_week=None, flag_on=True),
        "lsquic-d27-late-upgrade": lambda week: _lsquic(
            week, upgrade_week=LITESPEED_LATE_UPGRADE, flag_on=False
        ),
        "lsquic-d27-upgrade-flagoff": lambda week: _lsquic(
            week, upgrade_week=LITESPEED_V1_UPGRADE, flag_on=False
        ),
        "lsquic-d27-upgrade-flagon": lambda week: _lsquic(
            week, upgrade_week=LITESPEED_V1_UPGRADE, flag_on=True
        ),
        "lsquic-d27-gone": lambda week: _lsquic(
            week, upgrade_week=LITESPEED_V1_UPGRADE, flag_on=False, gone_after_upgrade=True
        ),
        "lsquic-v1-flagoff": lambda week: _lsquic_v1(week, flag_on=False),
        "lsquic-v1-flagon": lambda week: _lsquic_v1(week, flag_on=True),
        "lsquic-v1-flagoff-use": lambda week: _lsquic_v1(
            week, flag_on=False, use_ecn=True
        ),
        "lsquic-v1-flagon-use": lambda week: _lsquic_v1(
            week, flag_on=True, use_ecn=True
        ),
        "lsquic-v1-flagoff-noheader": lambda week: _lsquic_v1(
            week, flag_on=False, header=None
        ),
        "lsquic-v1-flagoff-noheader-use": lambda week: _lsquic_v1(
            week, flag_on=False, header=None, use_ecn=True
        ),
        "lsquic-v1-noecn": lambda week: StackBehavior(
            stack_label="lsquic",
            server_header="LiteSpeed",
            transport_params=LITESPEED_PARAMS,
        ),
        "lsquic-v1-noecn-noheader": lambda week: StackBehavior(
            stack_label="lsquic",
            server_header=None,
            transport_params=LITESPEED_PARAMS,
        ),
        # -- Google ----------------------------------------------------
        "google-own": lambda week: StackBehavior(
            stack_label="google-quiche",
            server_header="gws",
            transport_params=GOOGLE_PARAMS,
        ),
        "pepyaka-noecn": lambda week: StackBehavior(
            stack_label="google-quiche",
            server_header="Pepyaka",
            via_header="1.1 google",
            transport_params=GOOGLE_PARAMS,
        ),
        "pepyaka-undercount-early": lambda week: _pepyaka(
            week, start=GOOGLE_TEST_EARLY, quirk=MirrorQuirk.HALVED
        ),
        "pepyaka-undercount": lambda week: _pepyaka(
            week, start=GOOGLE_TEST_MAIN, quirk=MirrorQuirk.HALVED
        ),
        "pepyaka-remark": lambda week: _pepyaka(
            week, start=GOOGLE_TEST_MAIN, quirk=MirrorQuirk.SWAPPED
        ),
        "google-india-allce": lambda week: StackBehavior(
            stack_label="google-quiche",
            server_header="gws",
            transport_params=GOOGLE_PARAMS,
            mirror_quirk=MirrorQuirk.ALL_CE,
        ),
        "google-india-undercount": lambda week: StackBehavior(
            stack_label="google-quiche",
            server_header="gws",
            transport_params=GOOGLE_PARAMS,
            mirror_quirk=MirrorQuirk.HALVED,
        ),
        # -- CDNs without ECN ------------------------------------------
        "cloudflare": lambda week: StackBehavior(
            stack_label="cloudflare-quiche",
            server_header="cloudflare",
            transport_params=CLOUDFLARE_PARAMS,
        ),
        "fastly": lambda week: StackBehavior(
            stack_label="quicly",
            server_header="Fastly",
            transport_params=GENERIC_PARAMS,
        ),
        # -- Amazon CloudFront (s2n-quic) ------------------------------
        "s2n-quic": lambda week: StackBehavior(
            stack_label="s2n-quic",
            server_header="CloudFront",
            transport_params=AMAZON_PARAMS,
            mirror_quirk=MirrorQuirk.CORRECT,
            use_ecn=True,
            quic_enabled=week >= CLOUDFRONT_H3_LAUNCH,
        ),
        # -- Generic stacks --------------------------------------------
        "generic-correct": lambda week: StackBehavior(
            stack_label="generic",
            server_header="nginx",
            mirror_quirk=(
                MirrorQuirk.CORRECT if week >= MISC_CORRECT_START else MirrorQuirk.NONE
            ),
            use_ecn=week >= MISC_CORRECT_START,
        ),
        "generic-correct-nouse": lambda week: StackBehavior(
            stack_label="generic",
            server_header="nginx",
            mirror_quirk=(
                MirrorQuirk.CORRECT if week >= MISC_CORRECT_START else MirrorQuirk.NONE
            ),
        ),
        "generic-correct-always": lambda week: StackBehavior(
            stack_label="generic",
            server_header="nginx",
            mirror_quirk=MirrorQuirk.CORRECT,
            use_ecn=True,
        ),
        "generic-correct-always-nouse": lambda week: StackBehavior(
            stack_label="generic",
            server_header="nginx",
            mirror_quirk=MirrorQuirk.CORRECT,
        ),
        "generic-noecn": lambda week: StackBehavior(
            stack_label="generic",
            server_header="nginx",
        ),
        "generic-noecn-use": lambda week: StackBehavior(
            stack_label="generic",
            server_header="nginx",
            use_ecn=True,
        ),
        "generic-d29-noecn": lambda week: StackBehavior(
            stack_label="generic",
            version=QuicVersion.DRAFT_29,
            server_header="nginx",
        ),
        "generic-d34-noecn": lambda week: StackBehavior(
            stack_label="generic",
            version=QuicVersion.DRAFT_34,
            server_header="nginx",
        ),
        "generic-d29-mirror": lambda week: StackBehavior(
            stack_label="generic",
            version=QuicVersion.DRAFT_29,
            server_header="nginx",
            mirror_quirk=MirrorQuirk.CORRECT,
        ),
        "generic-d34-mirror": lambda week: StackBehavior(
            stack_label="generic",
            version=QuicVersion.DRAFT_34,
            server_header="nginx",
            mirror_quirk=MirrorQuirk.CORRECT,
        ),
        # -- Pathological stacks (tests, failure injection) ------------
        "buggy-nonmonotonic": lambda week: StackBehavior(
            stack_label="buggy",
            server_header="buggy",
            mirror_quirk=MirrorQuirk.DECREASING,
        ),
        "confused-ect1": lambda week: StackBehavior(
            stack_label="confused",
            server_header="nginx",
            mirror_quirk=MirrorQuirk.SWAPPED,
        ),
        "no-quic": lambda week: StackBehavior(
            stack_label="none",
            quic_enabled=False,
        ),
    }


def default_registry() -> StackRegistry:
    """The registry with every stack profile the world model references."""
    registry = StackRegistry()
    for key, factory in _default_factories().items():
        registry.register(key, factory)
    return registry
