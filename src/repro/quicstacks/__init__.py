"""Emulations of the QUIC server stacks observed in the wild.

Each stack is a :class:`~repro.quicstacks.base.QuicServerStack` driven by
a :class:`~repro.quicstacks.base.StackBehavior` that a registry resolves
per measurement week — so LiteSpeed hosts change from draft-27-with-ECN
to v1-without-ECN to v1-with-ECN exactly on the timeline the paper
reconstructs (§5.3), and Google's proxy fleet switches mirroring on
during its Jan/Mar 2023 experiments.
"""

from repro.quicstacks.base import MirrorQuirk, QuicServerStack, StackBehavior
from repro.quicstacks.registry import StackRegistry, default_registry

__all__ = [
    "MirrorQuirk",
    "QuicServerStack",
    "StackBehavior",
    "StackRegistry",
    "default_registry",
]
