"""Atomic file publication (tmp + ``os.replace``).

Extracted from the world snapshot cache's ``_persist`` so every on-disk
artifact that must survive a crash — world snapshots, campaign
checkpoints — publishes through one code path.  The contract: a reader
either sees the complete previous file or the complete new file, never
a partial write, even if the writer is killed mid-write.
"""

from __future__ import annotations

import os
from pathlib import Path


def atomic_write_bytes(path: str | os.PathLike[str], buf: bytes) -> Path:
    """Atomically publish ``buf`` at ``path``; returns the final path.

    The payload lands in a same-directory temp file first (``os.replace``
    is only atomic within one filesystem) and the temp name is unique
    per writer *process*, so concurrent writers sharing one directory
    cannot truncate each other's in-flight file before the rename.  A
    writer killed between write and replace leaves only a stale ``.tmp``
    file behind, never a partial final file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_bytes(buf)  # repro-lint: skip[REP004] this IS the atomic-write primitive

    os.replace(tmp, path)
    return path
