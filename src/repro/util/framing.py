"""Checksummed buffer framing shared by every on-disk/IPC codec.

One frame layout — ``magic + body length + CRC32 + body`` — wraps the
shard result codec (:mod:`repro.store.codec`), the world snapshot
codec (:mod:`repro.web.snapshot`) and the campaign checkpoint files
(:mod:`repro.pipeline.checkpoint`).  Verification happens before a
single body byte is interpreted, so a truncated or bit-flipped buffer
raises the typed :class:`CodecCorruption` instead of decoding to
plausible-but-wrong results (the failure mode crashed fork-pool workers
and torn files actually produce; see docs/robustness.md).

This module lives in :mod:`repro.util` because the codecs that share
it sit on opposite sides of an import cycle (the shard codec pulls the
QUIC/TCP result stack, which imports ``repro.web`` right back).
"""

from __future__ import annotations

import struct
import zlib


class CodecError(ValueError):
    """A buffer a codec cannot decode."""


class CodecCorruption(CodecError):
    """A framed buffer whose magic, length or checksum does not verify."""


#: Frame header behind the magic: little-endian body length + CRC32.
_FRAME_HEADER = struct.Struct("<II")


def frame_payload(magic: bytes, body: bytes) -> bytes:
    """Wrap ``body`` in a checksummed frame: magic, length, CRC32, body."""
    return magic + _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body


def unframe_payload(
    magic: bytes,
    buf: bytes,
    *,
    what: str = "framed",
    error: type[CodecCorruption] = CodecCorruption,
    copy: bool = True,
) -> bytes | memoryview:
    """Verify a frame written by :func:`frame_payload`; return its body.

    Raises ``error`` (a :class:`CodecCorruption` subclass) on bad magic,
    a length that disagrees with the buffer, or a checksum mismatch —
    which covers every truncation and every single bit flip: a flip in
    the body or checksum fails the CRC, one in the length field
    disagrees with the actual size, one in the magic fails the prefix
    check.

    With ``copy=False`` the body comes back as a read-only
    ``memoryview`` into ``buf`` instead of a fresh ``bytes`` — the
    zero-copy path the world-snapshot decoder uses to read directly out
    of a shared-memory segment.  The CRC is verified either way.
    """
    header_end = len(magic) + _FRAME_HEADER.size
    if bytes(buf[: len(magic)]) != magic:
        raise error(f"not a {what} buffer (bad magic)")
    if len(buf) < header_end:
        raise error(f"truncated {what} buffer (incomplete frame header)")
    body_len, crc = _FRAME_HEADER.unpack_from(buf, len(magic))
    if copy:
        body = bytes(buf[header_end:])
    else:
        body = memoryview(buf)[header_end:].toreadonly()
    if len(body) != body_len:
        raise error(
            f"corrupt {what} buffer: frame declares {body_len} body bytes, "
            f"found {len(body)}"
        )
    if zlib.crc32(body) != crc:
        raise error(f"corrupt {what} buffer: checksum mismatch")
    return body
