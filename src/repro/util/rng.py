"""Deterministic named random streams.

Every piece of randomness in the simulator flows from a named stream so
that (a) two runs with the same master seed are bit-identical and (b)
adding randomness to one subsystem does not perturb another (streams are
independent by name, not by draw order).
"""

from __future__ import annotations

import hashlib
import random


def _seed_for(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a master seed and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStream(random.Random):
    """A `random.Random` bound to a (master_seed, name) pair.

    The name is kept for debugging and for deriving further sub-streams.
    """

    def __init__(self, master_seed: int, name: str) -> None:
        self.master_seed = master_seed
        self.name = name
        super().__init__(_seed_for(master_seed, name))

    def child(self, suffix: str) -> "RngStream":
        """Derive an independent sub-stream, e.g. per-host or per-week."""
        return RngStream(self.master_seed, f"{self.name}/{suffix}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(seed={self.master_seed}, name={self.name!r})"


def derive_rng(master_seed: int, name: str) -> RngStream:
    """Convenience constructor for a named stream."""
    return RngStream(master_seed, name)


def stable_hash(*parts: object) -> int:
    """A process-independent 64-bit hash of the given parts.

    Python's builtin ``hash`` is salted per process; ECMP flow hashing and
    sampling decisions must instead be reproducible across runs.
    """
    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")
