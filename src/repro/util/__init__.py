"""Shared utilities: deterministic RNG streams, formatting, week calendar."""

from repro.util.fmt import format_count, format_pct
from repro.util.rng import RngStream, derive_rng
from repro.util.weeks import Week

__all__ = ["RngStream", "derive_rng", "format_count", "format_pct", "Week"]
