"""Shared utilities: RNG streams, formatting, weeks, atomic file writes."""

from repro.util.atomic import atomic_write_bytes
from repro.util.fmt import format_count, format_pct
from repro.util.rng import RngStream, derive_rng
from repro.util.weeks import Week

__all__ = [
    "RngStream",
    "atomic_write_bytes",
    "derive_rng",
    "format_count",
    "format_pct",
    "Week",
]
