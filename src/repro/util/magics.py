"""Central registry of frame magics — every persisted format, one place.

Each on-disk/IPC format the runtime persists opens with an 8-byte
magic, verified by :func:`repro.util.framing.unframe_payload` before a
single body byte is parsed.  Declaring them all here (REP004) keeps
them unique — a collision would let one codec "successfully" verify
another codec's frames and decode garbage with a valid CRC — and makes
"what do we persist?" a one-file question.

Bump the trailing digit when a format's body layout changes; decoders
reject unknown magics as corruption, which is what makes stale caches
rebuild instead of misparse (docs/robustness.md).
"""

from __future__ import annotations

from typing import Final

__all__ = [
    "CHECKPOINT_MAGIC",
    "FRAME_MAGICS",
    "SHARD_RESULT_MAGIC",
    "WORLD_SNAPSHOT_MAGIC",
]

#: Shard/ticket result buffers (:mod:`repro.store.codec`).
SHARD_RESULT_MAGIC: Final = b"ECNSTOR4"

#: World snapshots, on disk and in shared memory (:mod:`repro.web.snapshot`).
WORLD_SNAPSHOT_MAGIC: Final = b"ECNWRLD2"

#: Per-week campaign checkpoints (:mod:`repro.pipeline.checkpoint`).
CHECKPOINT_MAGIC: Final = b"ECNCKPT1"

#: Every registered frame magic, by format name.
FRAME_MAGICS: Final[dict[str, bytes]] = {
    "shard-result": SHARD_RESULT_MAGIC,
    "world-snapshot": WORLD_SNAPSHOT_MAGIC,
    "campaign-checkpoint": CHECKPOINT_MAGIC,
}

# A magic collision silently cross-decodes formats; fail at import.
if len(set(FRAME_MAGICS.values())) != len(FRAME_MAGICS):
    raise AssertionError("frame magics must be unique")
if any(len(magic) != 8 for magic in FRAME_MAGICS.values()):
    raise AssertionError("frame magics must be exactly 8 bytes")
