"""Shared-memory world segments (the fork-pool's zero-copy transport).

One encoded ECNWRLD2 snapshot buffer (:mod:`repro.web.snapshot`) is
published to a named ``multiprocessing.shared_memory`` segment exactly
once per campaign; persistent pool workers attach at startup and decode
their world straight from the mapped view — :func:`decode_world`
accepts a ``memoryview``, so the only full copy of the world buffer in
the whole system is the segment itself.  Platforms without working
POSIX shared memory fall back to an anonymous ``mmap``: forked workers
inherit the mapping, and an anonymous mapping cannot outlive the
processes that hold it, so the fallback is leak-proof by construction.

Leak discipline for the named backend: the *creating* process owns the
segment and must :meth:`SharedSegment.unlink` it.
:class:`~repro.pipeline.sharding.ShmPoolScanEngine` does so in
``close()`` — which the campaign loop's ``finally`` reaches on clean
runs, injected aborts and crashed workers alike (regression-tested in
``tests/test_shm_pool.py``).  Every created segment is also recorded in
a module registry; tests assert :func:`live_segments` is empty after a
run and scan ``/dev/shm`` for :data:`SEGMENT_PREFIX` to prove nothing
leaked at the OS level either.  Should the parent die before
``close()``, Python's resource tracker unlinks the named segment at
interpreter exit.
"""

from __future__ import annotations

import itertools
import mmap
import multiprocessing
import os
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from multiprocessing.shared_memory import SharedMemory

#: Name prefix of every named segment this module creates.  Segments
#: appear as ``/dev/shm/<name>`` on Linux; leak tests scan for this.
SEGMENT_PREFIX = "ecnw"

_COUNTER = itertools.count()

#: Segments created by this process and not yet unlinked.
_LIVE: dict[str, "SharedSegment"] = {}


def fork_available() -> bool:
    """Whether this platform can fork pool workers (POSIX only)."""
    return "fork" in multiprocessing.get_all_start_methods()


def shared_memory_available() -> bool:
    """Whether named POSIX shared memory actually *works* here.

    Importing :mod:`multiprocessing.shared_memory` succeeds on platforms
    (and in sandboxes) where creating a segment then fails, so this
    probes with a real one-byte segment.
    """
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=1)
    except Exception:
        return False
    probe.close()
    probe.unlink()
    return True


def live_segments() -> list[str]:
    """Names of segments this process created and has not unlinked."""
    return sorted(_LIVE)


class SharedSegment:
    """A read-only shared byte buffer with an owned lifecycle.

    :meth:`create` copies ``data`` into a named shared-memory segment
    (``backend="shm"``) or, when that is unavailable, an anonymous mmap
    (``backend="mmap"``).  :meth:`view` returns a read-only memoryview
    of exactly the published bytes; forked children inherit the mapping
    and decode from it with no further copy.  The creating process must
    call :meth:`unlink` (idempotent) to destroy the segment; attachers
    may call :meth:`close` to drop their mapping early, though process
    exit does the same.
    """

    def __init__(
        self,
        name: str,
        size: int,
        backend: str,
        shm: "SharedMemory | None",
        map_: mmap.mmap | None,
    ) -> None:
        self.name = name
        self.size = size
        self.backend = backend
        self._shm = shm
        self._map = map_

    @classmethod
    def create(
        cls,
        data: bytes | bytearray | memoryview,
        *,
        backend: str | None = None,
    ) -> "SharedSegment":
        """Publish ``data`` (any bytes-like) as a new shared segment."""
        data = memoryview(data)
        size = data.nbytes
        if backend is None:
            backend = "shm" if shared_memory_available() else "mmap"
        if backend == "shm":
            from multiprocessing import shared_memory

            name = f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_COUNTER)}"
            shm = shared_memory.SharedMemory(name=name, create=True, size=max(1, size))
            shm.buf[:size] = data
            segment = cls(name, size, "shm", shm, None)
        elif backend == "mmap":
            map_ = mmap.mmap(-1, max(1, size))
            map_[:size] = data
            name = f"{SEGMENT_PREFIX}-anon-{os.getpid()}-{next(_COUNTER)}"
            segment = cls(name, size, "mmap", None, map_)
        else:
            raise ValueError(f"unknown shared-segment backend: {backend!r}")
        _LIVE[segment.name] = segment
        return segment

    def view(self) -> memoryview:
        """Read-only view of the published bytes (valid until unlink)."""
        raw = self._shm.buf if self._shm is not None else memoryview(self._map)
        return raw[: self.size].toreadonly()

    def close(self) -> None:
        """Drop this process's mapping (attacher side; idempotent).

        A still-exported view pins the mapping — that is not a leak
        (process exit releases it), so ``BufferError`` is swallowed.
        """
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:
                pass
        if self._map is not None:
            try:
                self._map.close()
            except BufferError:
                pass

    def unlink(self) -> None:
        """Destroy the segment (owner side; idempotent).

        Removes the OS object (named backend) and this segment from the
        live registry, then drops the local mapping.  Safe to call with
        attachers still alive — their mappings persist until they exit,
        POSIX semantics — and safe to call twice.
        """
        if _LIVE.pop(self.name, None) is None:
            return
        if self._shm is not None:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self.close()

    def __enter__(self) -> "SharedSegment":
        return self

    def __exit__(self, *exc: object) -> None:
        self.unlink()


__all__ = [
    "SEGMENT_PREFIX",
    "SharedSegment",
    "fork_available",
    "live_segments",
    "shared_memory_available",
]
