"""Paper-style number formatting ("17.30 M", "525.58 k", "5.6 %")."""

from __future__ import annotations


def format_count(value: float) -> str:
    """Format a count the way the paper's tables do.

    >>> format_count(17_300_000)
    '17.30 M'
    >>> format_count(525_580)
    '525.58 k'
    >>> format_count(42)
    '42'
    """
    if value >= 1_000_000:
        return f"{value / 1_000_000:.2f} M"
    if value >= 1_000:
        return f"{value / 1_000:.2f} k"
    return f"{int(value)}"


def format_pct(numerator: float, denominator: float, digits: int = 1) -> str:
    """Format a share as a percent string; "-" when the base is empty."""
    if denominator <= 0:
        return "-"
    return f"{100.0 * numerator / denominator:.{digits}f} %"
