"""Measurement week calendar.

The paper's pipeline is week-driven (toplists refreshed Thursdays, zone
files Wednesdays, scans started Fridays).  We model measurement time as
ISO (year, week) pairs with simple arithmetic; the world timeline keys
events by week.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from functools import total_ordering
from typing import Iterator


@total_ordering
@dataclass(frozen=True)
class Week:
    """An ISO calendar week, e.g. ``Week(2023, 15)``."""

    year: int
    week: int

    def __post_init__(self) -> None:
        if not 1 <= self.week <= 53:
            raise ValueError(f"week out of range: {self.week}")

    @classmethod
    def from_date(cls, date: _dt.date) -> "Week":
        iso = date.isocalendar()
        return cls(iso[0], iso[1])

    def monday(self) -> _dt.date:
        return _dt.date.fromisocalendar(self.year, self.week, 1)

    def ordinal(self) -> int:
        """Days since epoch of this week's Monday; basis for arithmetic."""
        return self.monday().toordinal()

    def __lt__(self, other: "Week") -> bool:
        return self.ordinal() < other.ordinal()

    def __add__(self, weeks: int) -> "Week":
        return Week.from_date(self.monday() + _dt.timedelta(weeks=weeks))

    def __sub__(self, other: "Week") -> int:
        """Number of whole weeks between two weeks."""
        return (self.ordinal() - other.ordinal()) // 7

    def month_label(self) -> str:
        """Label like ``22-06`` used on the paper's time axes."""
        monday = self.monday()
        return f"{monday.year % 100:02d}-{monday.month:02d}"

    def __str__(self) -> str:
        return f"{self.year}-W{self.week:02d}"


def week_range(start: Week, end: Week) -> Iterator[Week]:
    """Yield weeks from ``start`` to ``end`` inclusive."""
    current = start
    while current <= end:
        yield current
        current = current + 1
