"""Deterministic fault injection for the campaign runtime.

A :class:`FaultPlan` is a seeded, declarative list of failures to
inject into a run: crash a pool worker on a specific shard attempt,
stall a shard past its supervision deadline, corrupt a shard result
buffer or a checkpoint file, or abort a campaign between weeks (the
kill-and-resume tests' "crash").  The runtime calls the plan's hooks at
the few places real faults strike — the worker entry point
(:func:`repro.pipeline.sharding._pool_run_shard`), the result
marshalling boundary, the checkpoint writer, the campaign week loop —
and a plan with no matching rule is a no-op at every one of them.

Determinism is the design constraint.  Hooks run on both sides of a
fork boundary, so rules match on *coordinates* — ``(shard, week,
attempt)`` — never on shared mutable counters; the same plan injects
the same faults into every execution of the same run.  Corruption is
seeded: byte positions and flip masks come from an
:class:`~repro.util.rng.RngStream` derived from the plan seed and the
target coordinates, so a corrupted buffer is reproducible bit for bit.

Rules with ``attempt=0`` (the default) fault only the first attempt of
a shard: supervision's first retry then succeeds, which is the common
"transient fault, recovered run" scenario.  ``attempt=None`` matches
every attempt — retries keep failing until supervision falls back to
inline execution in the parent, which the plan cannot reach.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.util.rng import RngStream
from repro.util.weeks import Week

#: Exit code of an injected worker crash — distinguishable from real
#: interpreter deaths in test assertions and CI logs.
CRASH_EXIT_CODE = 17


class InjectedFault(RuntimeError):
    """An error raised (not simulated) by an injected fault rule."""


@dataclass(frozen=True)
class _Rule:
    """One fault rule: what to do, and the coordinates it matches.

    ``None`` coordinates are wildcards.  ``week`` matches the week a
    shard belongs to (or a checkpoint covers); ``attempt`` matches the
    supervision attempt number (0 = first execution).
    """

    action: str  # "crash" | "delay" | "corrupt_shard" | "corrupt_checkpoint" | "abort"
    shard: int | None = None
    week: Week | None = None
    attempt: int | None = 0
    mode: str = "bitflip"  # corruption shape: "bitflip" | "truncate"
    seconds: float = 0.0  # delay duration

    def matches(self, *, shard=None, week=None, attempt=None) -> bool:
        if self.shard is not None and shard != self.shard:
            return False
        if self.week is not None and week != self.week:
            return False
        if self.attempt is not None and attempt != self.attempt:
            return False
        return True


def _corrupt(buf: bytes, mode: str, rng: RngStream) -> bytes:
    """Deterministically damage ``buf``: one bit flip, or a truncation."""
    if not buf:
        return buf
    if mode == "bitflip":
        position = rng.randrange(len(buf))
        bit = 1 << rng.randrange(8)
        out = bytearray(buf)
        out[position] ^= bit
        return bytes(out)
    if mode == "truncate":
        # Keep at least one byte missing; cutting to zero length is the
        # degenerate case the magic check already catches trivially.
        return buf[: rng.randrange(len(buf))]
    raise ValueError(f"unknown corruption mode: {mode!r}")


class FaultPlan:
    """A seeded set of fault rules, built with chainable ``*_`` methods.

    >>> plan = (
    ...     FaultPlan(seed=7)
    ...     .crash_worker(shard=1, week=Week(2021, 34))
    ...     .corrupt_shard_buffer(shard=2, mode="truncate")
    ... )

    Hook methods are called by the runtime (engine, pool worker,
    checkpointer, campaign loop); they are no-ops unless a rule matches
    the call's coordinates.  Plans are immutable once execution starts
    in the sense that the runtime never mutates them; they fork-copy
    into workers with the engine snapshot.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rules: list[_Rule] = []

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def _add(self, rule: _Rule) -> "FaultPlan":
        self.rules.append(rule)
        return self

    def crash_worker(
        self, *, shard: int | None = None, week: Week | None = None,
        attempt: int | None = 0,
    ) -> "FaultPlan":
        """Kill the worker process (``os._exit``) before it runs the shard."""
        return self._add(_Rule("crash", shard=shard, week=week, attempt=attempt))

    def delay_shard(
        self, seconds: float, *, shard: int | None = None,
        week: Week | None = None, attempt: int | None = 0,
    ) -> "FaultPlan":
        """Stall the worker before the shard — past a deadline, a timeout."""
        return self._add(
            _Rule("delay", shard=shard, week=week, attempt=attempt, seconds=seconds)
        )

    def corrupt_shard_buffer(
        self, *, mode: str = "bitflip", shard: int | None = None,
        week: Week | None = None, attempt: int | None = 0,
    ) -> "FaultPlan":
        """Damage the shard's marshalled result buffer in the worker."""
        if mode not in ("bitflip", "truncate"):
            raise ValueError(f"unknown corruption mode: {mode!r}")
        return self._add(
            _Rule("corrupt_shard", shard=shard, week=week, attempt=attempt, mode=mode)
        )

    def corrupt_checkpoint(
        self, *, week: Week | None = None, mode: str = "bitflip"
    ) -> "FaultPlan":
        """Damage a checkpoint file's bytes as they are written."""
        if mode not in ("bitflip", "truncate"):
            raise ValueError(f"unknown corruption mode: {mode!r}")
        return self._add(
            _Rule("corrupt_checkpoint", week=week, attempt=None, mode=mode)
        )

    def abort_campaign_after(self, week: Week) -> "FaultPlan":
        """Raise :class:`InjectedFault` after ``week`` completes — the
        simulated crash of the kill-and-resume tests."""
        return self._add(_Rule("abort", week=week, attempt=None))

    # ------------------------------------------------------------------
    # Runtime hooks
    # ------------------------------------------------------------------
    def before_shard(self, *, shard: int, week: Week, attempt: int) -> None:
        """Worker-side hook, called before a shard attempt executes."""
        for rule in self.rules:
            if rule.action == "crash" and rule.matches(
                shard=shard, week=week, attempt=attempt
            ):
                # A hard kill, not an exception: nothing is marshalled,
                # no finally blocks run — the task is simply lost, like
                # an OOM-killed or segfaulted worker.
                os._exit(CRASH_EXIT_CODE)
            if rule.action == "delay" and rule.matches(
                shard=shard, week=week, attempt=attempt
            ):
                time.sleep(rule.seconds)

    def mangle_shard_buffer(
        self, buf: bytes, *, shard: int, week: Week, attempt: int
    ) -> bytes:
        """Worker-side hook over the marshalled shard result buffer."""
        for rule in self.rules:
            if rule.action == "corrupt_shard" and rule.matches(
                shard=shard, week=week, attempt=attempt
            ):
                rng = RngStream(
                    self.seed, f"fault/shard/{week}/{shard}/{attempt}/{rule.mode}"
                )
                buf = _corrupt(buf, rule.mode, rng)
        return buf

    def mangle_checkpoint_bytes(self, buf: bytes, week: Week) -> bytes:
        """Writer-side hook over a checkpoint file's encoded bytes."""
        for rule in self.rules:
            if rule.action == "corrupt_checkpoint" and rule.matches(week=week):
                rng = RngStream(self.seed, f"fault/checkpoint/{week}/{rule.mode}")
                buf = _corrupt(buf, rule.mode, rng)
        return buf

    def after_week(self, week: Week) -> None:
        """Campaign-loop hook, called after a week's run is recorded."""
        for rule in self.rules:
            if rule.action == "abort" and rule.week == week:
                raise InjectedFault(f"injected campaign abort after {week}")
