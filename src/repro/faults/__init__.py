"""Deterministic fault injection (tests, CI smoke, robustness docs)."""

from repro.faults.plan import CRASH_EXIT_CODE, FaultPlan, InjectedFault

__all__ = [
    "CRASH_EXIT_CODE",
    "FaultPlan",
    "InjectedFault",
]
