"""Minimal HTTP layer: requests/responses over TCP (1.1/2) and QUIC (3)."""

from repro.http.messages import HttpRequest, HttpResponse

__all__ = ["HttpRequest", "HttpResponse"]
