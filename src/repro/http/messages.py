"""HTTP request/response records.

Only the header fields the study consumes are modelled: ``server`` (the
webserver identification behind Figure 3), ``via`` (Google's reverse
proxy fingerprint for wix.com / Pepyaka), ``alt-svc`` and ``location``
(which the scanner deliberately ignores, §4.1), plus the research-context
hint header required by the ethics appendix.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Ethics appendix: every request embeds the project name as a hint.
RESEARCH_HINT_HEADER = ("x-research", "quic-ecn-measurement; opt-out: see probe IP website")


@dataclass(frozen=True)
class HttpRequest:
    """A GET issued by the scanner."""

    authority: str
    path: str = "/"
    method: str = "GET"
    headers: tuple[tuple[str, str], ...] = (RESEARCH_HINT_HEADER,)

    def header(self, name: str) -> str | None:
        for key, value in self.headers:
            if key.lower() == name.lower():
                return value
        return None


@dataclass(frozen=True)
class HttpResponse:
    """A server response; header access is case-insensitive."""

    status: int = 200
    headers: tuple[tuple[str, str], ...] = ()
    body: bytes = b""

    def header(self, name: str) -> str | None:
        for key, value in self.headers:
            if key.lower() == name.lower():
                return value
        return None

    @property
    def server(self) -> str | None:
        return self.header("server")

    @property
    def server_product(self) -> str | None:
        """Server header with version suffixes stripped (paper §5.3
        removes everything after '/')."""
        raw = self.server
        if raw is None:
            return None
        return raw.split("/", 1)[0].strip()

    @property
    def via(self) -> str | None:
        return self.header("via")

    @property
    def alt_svc(self) -> str | None:
        return self.header("alt-svc")

    @property
    def location(self) -> str | None:
        return self.header("location")

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 303, 307, 308)
