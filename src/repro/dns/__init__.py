"""DNS model: A/AAAA records with per-vantage (geo) resolution views."""

from repro.dns.resolver import DnsRecord, Resolver

__all__ = ["DnsRecord", "Resolver"]
