"""A miniature DNS with geo-dependent answers.

The distributed pipeline resolves every forwarded domain locally at each
cloud vantage point (§4.3), which matters because CDNs answer with
different infrastructure per location — the wix.com anomaly in §8 (US
West resolving to non-QUIC infrastructure) is exactly such a geo split.
Parking detection uses NS/CNAME records as in §5.1.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DnsRecord:
    """The records the study consumes for one domain."""

    a: str | None = None
    aaaa: str | None = None
    cname: str | None = None
    ns: tuple[str, ...] = ()

    @property
    def resolvable(self) -> bool:
        return self.a is not None or self.aaaa is not None


class Resolver:
    """Domain -> record store with per-vantage overrides.

    Records can be added eagerly (:meth:`add`) or derived on demand by a
    *fallback* (:meth:`set_fallback`): a callable consulted on a lookup
    miss, whose non-None answers are memoised.  The world builder uses
    the fallback as a lazy DNS section — zone records are a pure
    function of the domain/site tables, so they need not be materialised
    until something actually resolves them.  Explicit records and
    per-vantage overrides always win over the fallback.
    """

    def __init__(self) -> None:
        self._records: dict[str, DnsRecord] = {}
        self._overrides: dict[tuple[str, str], DnsRecord] = {}
        self._fallback = None

    # ------------------------------------------------------------------
    def add(self, domain: str, record: DnsRecord) -> None:
        self._records[domain] = record

    def add_override(self, vantage_id: str, domain: str, record: DnsRecord) -> None:
        """Install a geo-specific answer for one vantage point."""
        self._overrides[(vantage_id, domain)] = record

    def set_fallback(self, fallback) -> None:
        """Install the lazy-derivation hook (``fallback(domain) -> DnsRecord | None``)."""
        self._fallback = fallback

    # ------------------------------------------------------------------
    def resolve(self, domain: str, *, vantage_id: str | None = None) -> DnsRecord | None:
        """Full record set for ``domain`` as seen from ``vantage_id``."""
        if vantage_id is not None:
            override = self._overrides.get((vantage_id, domain))
            if override is not None:
                return override
        record = self._records.get(domain)
        if record is None and self._fallback is not None:
            record = self._fallback(domain)
            if record is not None:
                self._records[domain] = record
        return record

    def resolve_address(
        self, domain: str, *, family: int = 4, vantage_id: str | None = None
    ) -> str | None:
        """First A (family=4) or AAAA (family=6) answer, or None."""
        record = self.resolve(domain, vantage_id=vantage_id)
        if record is None:
            return None
        return record.a if family == 4 else record.aaaa

    def known_domains(self) -> int:
        return len(self._records)
