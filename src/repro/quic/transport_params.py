"""QUIC transport parameters (RFC 9000 §18) and stack fingerprinting.

The paper identifies server implementations whose HTTP ``server`` header
is missing by comparing transport parameters against known stacks
(LiteSpeed, Google) — §5.3, §7.3.  We reproduce that: parameters encode
and decode to real bytes, and :meth:`TransportParameters.fingerprint`
yields the stable tuple the analysis matches on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.quic.varint import decode_varint, encode_varint

PARAM_MAX_IDLE_TIMEOUT = 0x01
PARAM_MAX_UDP_PAYLOAD_SIZE = 0x03
PARAM_INITIAL_MAX_DATA = 0x04
PARAM_INITIAL_MAX_STREAM_DATA_BIDI_LOCAL = 0x05
PARAM_INITIAL_MAX_STREAM_DATA_BIDI_REMOTE = 0x06
PARAM_INITIAL_MAX_STREAMS_BIDI = 0x08
PARAM_INITIAL_MAX_STREAMS_UNI = 0x09
PARAM_ACK_DELAY_EXPONENT = 0x0A
PARAM_MAX_ACK_DELAY = 0x0B
PARAM_ACTIVE_CONNECTION_ID_LIMIT = 0x0E

_KNOWN_PARAMS = (
    PARAM_MAX_IDLE_TIMEOUT,
    PARAM_MAX_UDP_PAYLOAD_SIZE,
    PARAM_INITIAL_MAX_DATA,
    PARAM_INITIAL_MAX_STREAM_DATA_BIDI_LOCAL,
    PARAM_INITIAL_MAX_STREAM_DATA_BIDI_REMOTE,
    PARAM_INITIAL_MAX_STREAMS_BIDI,
    PARAM_INITIAL_MAX_STREAMS_UNI,
    PARAM_ACK_DELAY_EXPONENT,
    PARAM_MAX_ACK_DELAY,
    PARAM_ACTIVE_CONNECTION_ID_LIMIT,
)


@dataclass(frozen=True, slots=True)
class TransportParameters:
    """An ordered mapping of integer parameter ids to integer values."""

    values: tuple[tuple[int, int], ...] = ()

    @classmethod
    def from_dict(cls, mapping: dict[int, int]) -> "TransportParameters":
        return cls(tuple(sorted(mapping.items())))

    def as_dict(self) -> dict[int, int]:
        return dict(self.values)

    def get(self, param_id: int, default: int | None = None) -> int | None:
        return self.as_dict().get(param_id, default)

    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        out = bytearray()
        for param_id, value in self.values:
            encoded = encode_varint(value)
            out += encode_varint(param_id)
            out += encode_varint(len(encoded))
            out += encoded
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "TransportParameters":
        values: list[tuple[int, int]] = []
        offset = 0
        while offset < len(data):
            param_id, offset = decode_varint(data, offset)
            length, offset = decode_varint(data, offset)
            value, value_end = decode_varint(data, offset)
            if value_end - offset != length:
                raise ValueError("transport parameter length mismatch")
            offset = value_end
            values.append((param_id, value))
        return cls(tuple(sorted(values)))

    # ------------------------------------------------------------------
    def fingerprint(self) -> tuple[tuple[int, int], ...]:
        """Stable identity used to attribute unlabelled servers to stacks."""
        return self.values


# Reference parameter sets for the stacks the paper fingerprints.  The
# concrete numbers are representative defaults; what matters is that each
# stack's tuple is distinctive and stable.
LITESPEED_PARAMS = TransportParameters.from_dict(
    {
        PARAM_MAX_IDLE_TIMEOUT: 30_000,
        PARAM_MAX_UDP_PAYLOAD_SIZE: 1_472,
        PARAM_INITIAL_MAX_DATA: 1_572_864,
        PARAM_INITIAL_MAX_STREAM_DATA_BIDI_LOCAL: 65_536,
        PARAM_INITIAL_MAX_STREAM_DATA_BIDI_REMOTE: 65_536,
        PARAM_INITIAL_MAX_STREAMS_BIDI: 100,
        PARAM_INITIAL_MAX_STREAMS_UNI: 3,
        PARAM_ACK_DELAY_EXPONENT: 3,
        PARAM_MAX_ACK_DELAY: 25,
        PARAM_ACTIVE_CONNECTION_ID_LIMIT: 8,
    }
)

GOOGLE_PARAMS = TransportParameters.from_dict(
    {
        PARAM_MAX_IDLE_TIMEOUT: 240_000,
        PARAM_MAX_UDP_PAYLOAD_SIZE: 1_350,
        PARAM_INITIAL_MAX_DATA: 15_728_640,
        PARAM_INITIAL_MAX_STREAM_DATA_BIDI_LOCAL: 6_291_456,
        PARAM_INITIAL_MAX_STREAM_DATA_BIDI_REMOTE: 6_291_456,
        PARAM_INITIAL_MAX_STREAMS_BIDI: 100,
        PARAM_INITIAL_MAX_STREAMS_UNI: 103,
        PARAM_ACK_DELAY_EXPONENT: 3,
        PARAM_MAX_ACK_DELAY: 25,
        PARAM_ACTIVE_CONNECTION_ID_LIMIT: 8,
    }
)

CLOUDFLARE_PARAMS = TransportParameters.from_dict(
    {
        PARAM_MAX_IDLE_TIMEOUT: 180_000,
        PARAM_MAX_UDP_PAYLOAD_SIZE: 1_452,
        PARAM_INITIAL_MAX_DATA: 10_485_760,
        PARAM_INITIAL_MAX_STREAM_DATA_BIDI_LOCAL: 1_048_576,
        PARAM_INITIAL_MAX_STREAM_DATA_BIDI_REMOTE: 1_048_576,
        PARAM_INITIAL_MAX_STREAMS_BIDI: 256,
        PARAM_INITIAL_MAX_STREAMS_UNI: 3,
        PARAM_ACK_DELAY_EXPONENT: 3,
        PARAM_MAX_ACK_DELAY: 25,
        PARAM_ACTIVE_CONNECTION_ID_LIMIT: 2,
    }
)

AMAZON_PARAMS = TransportParameters.from_dict(
    {
        PARAM_MAX_IDLE_TIMEOUT: 120_000,
        PARAM_MAX_UDP_PAYLOAD_SIZE: 1_472,
        PARAM_INITIAL_MAX_DATA: 4_194_304,
        PARAM_INITIAL_MAX_STREAM_DATA_BIDI_LOCAL: 1_048_576,
        PARAM_INITIAL_MAX_STREAM_DATA_BIDI_REMOTE: 1_048_576,
        PARAM_INITIAL_MAX_STREAMS_BIDI: 128,
        PARAM_INITIAL_MAX_STREAMS_UNI: 3,
        PARAM_ACK_DELAY_EXPONENT: 3,
        PARAM_MAX_ACK_DELAY: 25,
        PARAM_ACTIVE_CONNECTION_ID_LIMIT: 4,
    }
)

GENERIC_PARAMS = TransportParameters.from_dict(
    {
        PARAM_MAX_IDLE_TIMEOUT: 60_000,
        PARAM_MAX_UDP_PAYLOAD_SIZE: 1_452,
        PARAM_INITIAL_MAX_DATA: 1_048_576,
        PARAM_INITIAL_MAX_STREAM_DATA_BIDI_LOCAL: 262_144,
        PARAM_INITIAL_MAX_STREAM_DATA_BIDI_REMOTE: 262_144,
        PARAM_INITIAL_MAX_STREAMS_BIDI: 32,
        PARAM_INITIAL_MAX_STREAMS_UNI: 3,
        PARAM_ACK_DELAY_EXPONENT: 3,
        PARAM_MAX_ACK_DELAY: 26,
        PARAM_ACTIVE_CONNECTION_ID_LIMIT: 4,
    }
)
