"""QUIC frames with byte-level encode/decode (RFC 9000 §19).

The frame that matters most to this study is ACK: its 0x03 variant
carries the three ECN counters the server mirrors back to the client —
the raw material of QUIC ECN validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Union

from repro.core.counters import EcnCounts
from repro.quic.varint import decode_varint, encode_varint

FRAME_PADDING = 0x00
FRAME_PING = 0x01
FRAME_ACK = 0x02
FRAME_ACK_ECN = 0x03
FRAME_CRYPTO = 0x06
FRAME_STREAM_BASE = 0x08  # 0x08..0x0f with OFF/LEN/FIN bits
FRAME_CONNECTION_CLOSE = 0x1C
FRAME_HANDSHAKE_DONE = 0x1E


@dataclass(frozen=True, slots=True)
class PaddingFrame:
    """A run of PADDING bytes (each is a zero byte on the wire)."""

    length: int = 1

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("padding length must be >= 1")


@dataclass(frozen=True, slots=True)
class PingFrame:
    pass


@dataclass(frozen=True, slots=True)
class AckFrame:
    """ACK frame; ``ranges`` are inclusive (low, high) packet-number pairs,
    ordered descending by ``high`` as on the wire.  ``ecn`` is the mirrored
    counter triple, or None for the 0x02 (no-ECN) variant."""

    ranges: tuple[tuple[int, int], ...]
    ack_delay: int = 0
    ecn: EcnCounts | None = None

    def __post_init__(self) -> None:
        if not self.ranges:
            raise ValueError("ACK needs at least one range")
        for low, high in self.ranges:
            if low > high or low < 0:
                raise ValueError(f"bad ack range: {(low, high)}")

    @property
    def largest_acknowledged(self) -> int:
        return self.ranges[0][1]

    def acked_packet_numbers(self) -> set[int]:
        acked: set[int] = set()
        for low, high in self.ranges:
            acked.update(range(low, high + 1))
        return acked

    def acknowledges(self, pn: int) -> bool:
        return any(low <= pn <= high for low, high in self.ranges)

    @classmethod
    def for_packets(cls, pns: Iterable[int], ecn: EcnCounts | None = None) -> "AckFrame":
        """Build an ACK covering exactly ``pns`` (arbitrary order)."""
        ordered = sorted(pns) if isinstance(pns, (set, frozenset)) else sorted(set(pns))
        if not ordered:
            raise ValueError("cannot ACK an empty set")
        # Scan traffic almost always acknowledges one contiguous run, and
        # the same few (range, counters) shapes recur across every site a
        # campaign touches — frames are frozen, so they are shared.
        if ordered[-1] - ordered[0] == len(ordered) - 1:
            return _contiguous_ack(ordered[0], ordered[-1], ecn)
        ranges: list[tuple[int, int]] = []
        start = prev = ordered[0]
        for pn in ordered[1:]:
            if pn == prev + 1:
                prev = pn
                continue
            ranges.append((start, prev))
            start = prev = pn
        ranges.append((start, prev))
        ranges.sort(key=lambda r: r[1], reverse=True)
        return cls(ranges=tuple(ranges), ecn=ecn)


@lru_cache(maxsize=4096)
def _contiguous_ack(low: int, high: int, ecn: EcnCounts | None) -> "AckFrame":
    return AckFrame(ranges=((low, high),), ecn=ecn)


@dataclass(frozen=True, slots=True)
class CryptoFrame:
    offset: int
    data: bytes


@dataclass(frozen=True, slots=True)
class StreamFrame:
    stream_id: int
    offset: int
    data: bytes
    fin: bool = False


@dataclass(frozen=True, slots=True)
class ConnectionCloseFrame:
    error_code: int
    frame_type: int = 0
    reason: bytes = b""


@dataclass(frozen=True, slots=True)
class HandshakeDoneFrame:
    pass


Frame = Union[
    PaddingFrame,
    PingFrame,
    AckFrame,
    CryptoFrame,
    StreamFrame,
    ConnectionCloseFrame,
    HandshakeDoneFrame,
]


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode_frame(frame: Frame) -> bytes:
    if isinstance(frame, PaddingFrame):
        return bytes(frame.length)
    if isinstance(frame, PingFrame):
        return bytes([FRAME_PING])
    if isinstance(frame, AckFrame):
        return _encode_ack(frame)
    if isinstance(frame, CryptoFrame):
        return (
            bytes([FRAME_CRYPTO])
            + encode_varint(frame.offset)
            + encode_varint(len(frame.data))
            + frame.data
        )
    if isinstance(frame, StreamFrame):
        return _encode_stream(frame)
    if isinstance(frame, ConnectionCloseFrame):
        return (
            bytes([FRAME_CONNECTION_CLOSE])
            + encode_varint(frame.error_code)
            + encode_varint(frame.frame_type)
            + encode_varint(len(frame.reason))
            + frame.reason
        )
    if isinstance(frame, HandshakeDoneFrame):
        return bytes([FRAME_HANDSHAKE_DONE])
    raise TypeError(f"cannot encode frame: {frame!r}")


def _encode_ack(frame: AckFrame) -> bytes:
    frame_type = FRAME_ACK_ECN if frame.ecn is not None else FRAME_ACK
    first_low, first_high = frame.ranges[0]
    out = bytearray([frame_type])
    out += encode_varint(first_high)
    out += encode_varint(frame.ack_delay)
    out += encode_varint(len(frame.ranges) - 1)
    out += encode_varint(first_high - first_low)
    prev_low = first_low
    for low, high in frame.ranges[1:]:
        gap = prev_low - high - 2
        if gap < 0:
            raise ValueError("ack ranges overlap or are unordered")
        out += encode_varint(gap)
        out += encode_varint(high - low)
        prev_low = low
    if frame.ecn is not None:
        out += encode_varint(frame.ecn.ect0)
        out += encode_varint(frame.ecn.ect1)
        out += encode_varint(frame.ecn.ce)
    return bytes(out)


def _encode_stream(frame: StreamFrame) -> bytes:
    frame_type = FRAME_STREAM_BASE | 0x02  # LEN always present
    if frame.offset:
        frame_type |= 0x04
    if frame.fin:
        frame_type |= 0x01
    out = bytearray([frame_type])
    out += encode_varint(frame.stream_id)
    if frame.offset:
        out += encode_varint(frame.offset)
    out += encode_varint(len(frame.data))
    out += frame.data
    return bytes(out)


def encode_frames(frames: Iterable[Frame]) -> bytes:
    return b"".join(encode_frame(f) for f in frames)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def decode_frames(data: bytes) -> list[Frame]:
    """Decode a packet payload into its frame sequence."""
    frames: list[Frame] = []
    offset = 0
    while offset < len(data):
        frame, offset = _decode_one(data, offset)
        # Coalesce padding runs like real stacks do when logging.
        if (
            isinstance(frame, PaddingFrame)
            and frames
            and isinstance(frames[-1], PaddingFrame)
        ):
            frames[-1] = PaddingFrame(frames[-1].length + frame.length)
        else:
            frames.append(frame)
    return frames


def _decode_one(data: bytes, offset: int) -> tuple[Frame, int]:
    frame_type = data[offset]
    offset += 1
    if frame_type == FRAME_PADDING:
        return PaddingFrame(1), offset
    if frame_type == FRAME_PING:
        return PingFrame(), offset
    if frame_type in (FRAME_ACK, FRAME_ACK_ECN):
        return _decode_ack(data, offset, with_ecn=frame_type == FRAME_ACK_ECN)
    if frame_type == FRAME_CRYPTO:
        crypto_offset, offset = decode_varint(data, offset)
        length, offset = decode_varint(data, offset)
        payload = data[offset : offset + length]
        if len(payload) != length:
            raise ValueError("CRYPTO frame truncated")
        return CryptoFrame(crypto_offset, payload), offset + length
    if FRAME_STREAM_BASE <= frame_type <= FRAME_STREAM_BASE | 0x07:
        return _decode_stream(data, offset, frame_type)
    if frame_type == FRAME_CONNECTION_CLOSE:
        error_code, offset = decode_varint(data, offset)
        inner_type, offset = decode_varint(data, offset)
        length, offset = decode_varint(data, offset)
        reason = data[offset : offset + length]
        if len(reason) != length:
            raise ValueError("CONNECTION_CLOSE truncated")
        return ConnectionCloseFrame(error_code, inner_type, reason), offset + length
    if frame_type == FRAME_HANDSHAKE_DONE:
        return HandshakeDoneFrame(), offset
    raise ValueError(f"unknown frame type: 0x{frame_type:02x}")


def _decode_ack(data: bytes, offset: int, with_ecn: bool) -> tuple[AckFrame, int]:
    largest, offset = decode_varint(data, offset)
    ack_delay, offset = decode_varint(data, offset)
    range_count, offset = decode_varint(data, offset)
    first_range, offset = decode_varint(data, offset)
    high = largest
    low = largest - first_range
    if low < 0:
        raise ValueError("ACK first range underflows")
    ranges = [(low, high)]
    for _ in range(range_count):
        gap, offset = decode_varint(data, offset)
        length, offset = decode_varint(data, offset)
        high = low - gap - 2
        low = high - length
        if low < 0:
            raise ValueError("ACK range underflows")
        ranges.append((low, high))
    ecn = None
    if with_ecn:
        ect0, offset = decode_varint(data, offset)
        ect1, offset = decode_varint(data, offset)
        ce, offset = decode_varint(data, offset)
        ecn = EcnCounts(ect0, ect1, ce)
    return AckFrame(ranges=tuple(ranges), ack_delay=ack_delay, ecn=ecn), offset


def _decode_stream(data: bytes, offset: int, frame_type: int) -> tuple[StreamFrame, int]:
    has_offset = bool(frame_type & 0x04)
    has_length = bool(frame_type & 0x02)
    fin = bool(frame_type & 0x01)
    stream_id, offset = decode_varint(data, offset)
    stream_offset = 0
    if has_offset:
        stream_offset, offset = decode_varint(data, offset)
    if has_length:
        length, offset = decode_varint(data, offset)
        payload = data[offset : offset + length]
        if len(payload) != length:
            raise ValueError("STREAM frame truncated")
        offset += length
    else:
        payload = data[offset:]
        offset = len(data)
    return StreamFrame(stream_id, stream_offset, payload, fin=fin), offset
