"""QUIC version numbers used by the measurement campaign.

The paper's client supports QUIC v1 plus drafts 27, 29, 32 and 34 for
longitudinal coverage (§4.1); Figure 4/8 labels use the short forms
``v1`` / ``d27`` / … reproduced by :meth:`QuicVersion.label`.
"""

from __future__ import annotations

import enum


class QuicVersion(enum.IntEnum):
    """Wire version numbers (draft versions use 0xff0000xx)."""

    V1 = 0x0000_0001
    DRAFT_27 = 0xFF00_001B
    DRAFT_29 = 0xFF00_001D
    DRAFT_32 = 0xFF00_0020
    DRAFT_34 = 0xFF00_0022

    @property
    def label(self) -> str:
        """Paper-style short label ("v1", "d27", ...)."""
        if self is QuicVersion.V1:
            return "v1"
        return f"d{self.value & 0xFF:d}"

    @property
    def is_draft(self) -> bool:
        return (self.value >> 8) == 0xFF0000

    @classmethod
    def from_label(cls, label: str) -> "QuicVersion":
        for version in cls:
            if version.label == label:
                return version
        raise ValueError(f"unknown QUIC version label: {label!r}")


#: Client's preference order, newest first (like the adapted quic-go).
SUPPORTED_VERSIONS: tuple[QuicVersion, ...] = (
    QuicVersion.V1,
    QuicVersion.DRAFT_34,
    QuicVersion.DRAFT_32,
    QuicVersion.DRAFT_29,
    QuicVersion.DRAFT_27,
)
