"""RFC 9000 §16 variable-length integer encoding.

Two most-significant bits of the first byte select the length
(1/2/4/8 bytes); the remaining bits carry the value big-endian.
"""

from __future__ import annotations

MAX_VARINT = (1 << 62) - 1

_LENGTH_BY_PREFIX = {0b00: 1, 0b01: 2, 0b10: 4, 0b11: 8}


def varint_length(value: int) -> int:
    """Number of bytes the encoding of ``value`` occupies."""
    if value < 0 or value > MAX_VARINT:
        raise ValueError(f"varint out of range: {value}")
    if value < 1 << 6:
        return 1
    if value < 1 << 14:
        return 2
    if value < 1 << 30:
        return 4
    return 8


def encode_varint(value: int) -> bytes:
    """Encode ``value`` as an RFC 9000 varint."""
    length = varint_length(value)
    prefix = {1: 0b00, 2: 0b01, 4: 0b10, 8: 0b11}[length]
    raw = value.to_bytes(length, "big")
    return bytes([raw[0] | (prefix << 6)]) + raw[1:]


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` at ``offset``.

    Returns ``(value, next_offset)``.
    """
    if offset >= len(data):
        raise ValueError("varint truncated: empty input")
    first = data[offset]
    length = _LENGTH_BY_PREFIX[first >> 6]
    if offset + length > len(data):
        raise ValueError("varint truncated")
    value = first & 0x3F
    for i in range(1, length):
        value = (value << 8) | data[offset + i]
    return value, offset + length
