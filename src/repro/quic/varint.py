"""RFC 9000 §16 variable-length integer encoding.

Two most-significant bits of the first byte select the length
(1/2/4/8 bytes); the remaining bits carry the value big-endian.
"""

from __future__ import annotations

MAX_VARINT = (1 << 62) - 1

_LENGTH_BY_PREFIX = {0b00: 1, 0b01: 2, 0b10: 4, 0b11: 8}

#: Value mask per length prefix (the two prefix bits stripped).
_MASK_BY_PREFIX = (0x3F, (1 << 14) - 1, (1 << 30) - 1, (1 << 62) - 1)


def varint_length(value: int) -> int:
    """Number of bytes the encoding of ``value`` occupies."""
    if value < 0 or value > MAX_VARINT:
        raise ValueError(f"varint out of range: {value}")
    if value < 1 << 6:
        return 1
    if value < 1 << 14:
        return 2
    if value < 1 << 30:
        return 4
    return 8


def encode_varint(value: int) -> bytes:
    """Encode ``value`` as an RFC 9000 varint."""
    length = varint_length(value)
    prefix = {1: 0b00, 2: 0b01, 4: 0b10, 8: 0b11}[length]
    raw = value.to_bytes(length, "big")
    return bytes([raw[0] | (prefix << 6)]) + raw[1:]


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` at ``offset``.

    Returns ``(value, next_offset)``.  This sits on the hot path of
    both the simulated wire and the result codec, so the common
    single-byte case returns without any slicing and longer values go
    through one ``int.from_bytes`` instead of a per-byte loop.
    """
    try:
        first = data[offset]
    except IndexError:
        raise ValueError("varint truncated: empty input") from None
    prefix = first >> 6
    if not prefix:
        return first & 0x3F, offset + 1
    length = 1 << prefix
    end = offset + length
    chunk = data[offset:end]
    if len(chunk) != length:
        raise ValueError("varint truncated")
    return int.from_bytes(chunk, "big") & _MASK_BY_PREFIX[prefix], end
