"""Scan-style QUIC client connection.

Mirrors the behaviour of the paper's adapted quic-go inside zgrab2
(§4.1): one HTTP/3 GET per target, a single Initial retransmission, and
the ECN validation state machine running with the reduced budget of
5 testing packets / 2 timeouts.  The client talks to the world through a
:class:`Wire` — any object with ``exchange(IpPacket) -> list[IpPacket]``
— so the same code runs over the simulated network in scans and over a
loopback in unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Protocol

from repro.core.codepoints import ECN
from repro.core.counters import EcnCounts
from repro.core.validation import (
    AckEcnSample,
    EcnValidator,
    ValidationConfig,
    ValidationOutcome,
)
from repro.http.messages import HttpRequest, HttpResponse
from repro.netsim.packet import IpPacket, UdpPayload
from repro.quic.frames import (
    AckFrame,
    ConnectionCloseFrame,
    CryptoFrame,
    Frame,
    StreamFrame,
)
from repro.quic.packets import (
    LongHeaderPacket,
    PacketNumberSpace,
    PacketType,
    QuicPacket,
    ShortHeaderPacket,
    VersionNegotiationPacket,
)
from repro.quic.transport_params import TransportParameters
from repro.quic.versions import SUPPORTED_VERSIONS, QuicVersion

QUIC_PORT = 443


class Wire(Protocol):
    """Transport abstraction: send one IP packet, receive the responses."""

    def exchange(self, packet: IpPacket) -> list[IpPacket]:  # pragma: no cover
        ...


@dataclass(frozen=True, slots=True)
class QuicClientConfig:
    """Client knobs; defaults follow the paper's adaptations."""

    versions: tuple[QuicVersion, ...] = SUPPORTED_VERSIONS
    validation: ValidationConfig = field(default_factory=ValidationConfig)
    initial_retransmissions: int = 1  # paper reduced 2 -> 1 (§4.1, §A)
    request_packets: int = 3  # 1-RTT packets carrying the GET
    rto_seconds: float = 1.0
    request_timeout: float = 10.0
    source_ip: str = "192.0.2.1"
    source_port: int = 50_000
    ip_version: int = 4
    #: Disable ECN entirely (no testing phase) — how most QUIC stacks in
    #: the paper's interop matrix behave.  Baseline for greasing studies.
    enable_ecn: bool = True
    #: §9.3 proposal: randomly enforce ECN codepoints on packets that
    #: would otherwise be not-ECT (validation failed or concluded), to
    #: keep ECN visible to the network and resist ossification.  Greased
    #: packets are invisible to the validation machine.
    grease_ecn: bool = False
    grease_probability: float = 0.25
    #: Extra 1-RTT PING packets after the request (greasing studies).
    trailing_pings: int = 0


@dataclass(slots=True)
class QuicConnectionResult:
    """Observables of one scan connection (what zgrab logged)."""

    connected: bool = False
    version: QuicVersion | None = None
    server_header: str | None = None
    via_header: str | None = None
    alt_svc: str | None = None
    response_status: int | None = None
    transport_fingerprint: tuple[tuple[int, int], ...] | None = None
    mirroring: bool = False
    validation_outcome: ValidationOutcome = ValidationOutcome.PENDING
    server_set_ect: bool = False
    inbound_ecn_counts: EcnCounts = field(default_factory=EcnCounts)
    marked_sent: int = 0
    marked_acked: int = 0
    mirrored_counts: EcnCounts | None = None
    greased_sent: int = 0
    error: str | None = None


class QuicClient:
    """Drives one connection + HTTP/3 request against a wire."""

    __slots__ = (
        "wire",
        "config",
        "rng",
        "validator",
        "result",
        "_pn_next",
        "_sent_markings",
        "_acked",
        "_space_counts",
        "_server_pns",
        "_dcid",
        "_scid",
        "_response_body",
        "_response",
    )

    def __init__(
        self,
        wire: Wire,
        config: QuicClientConfig | None = None,
        *,
        rng=None,
    ):
        self.wire = wire
        self.config = config or QuicClientConfig()
        # The client only draws randomness for §9.3 greasing; seeding a
        # stream costs a SHA-256, so plain scans skip it entirely.
        if rng is None and self.config.grease_ecn:
            from repro.util.rng import RngStream

            rng = RngStream(0, "quic-client")
        self.rng = rng
        self.validator = EcnValidator(config=self.config.validation)
        self.result = QuicConnectionResult()
        self._pn_next: dict[PacketNumberSpace, int] = {
            space: 0 for space in PacketNumberSpace
        }
        self._sent_markings: dict[PacketNumberSpace, dict[int, ECN]] = {
            space: {} for space in PacketNumberSpace
        }
        self._acked: dict[PacketNumberSpace, set[int]] = {
            space: set() for space in PacketNumberSpace
        }
        self._space_counts: dict[PacketNumberSpace, EcnCounts] = {}
        self._server_pns: dict[PacketNumberSpace, set[int]] = {
            space: set() for space in PacketNumberSpace
        }
        self._dcid = b"\x11" * 8
        self._scid = b"\x22" * 8
        self._response_body = bytearray()
        self._response: HttpResponse | None = None

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def fetch(self, target_ip: str, request: HttpRequest) -> QuicConnectionResult:
        """Run the whole exchange; never raises for remote misbehaviour."""
        try:
            self._run(target_ip, request)
        except _ConnectionAbort as abort:
            self.result.error = abort.reason
        self.result.validation_outcome = self.validator.finish()
        self.result.mirroring = self.validator.mirroring_observed
        self.result.marked_sent = self.validator.marked_sent
        self.result.marked_acked = self.validator.marked_acked
        self.result.mirrored_counts = self._aggregate_counts()
        if self._response is not None:
            self.result.server_header = self._response.server_product
            self.result.via_header = self._response.via
            self.result.alt_svc = self._response.alt_svc
            self.result.response_status = self._response.status
        return self.result

    # ------------------------------------------------------------------
    # Connection script
    # ------------------------------------------------------------------
    def _run(self, target_ip: str, request: HttpRequest) -> None:
        version = self.config.versions[0]
        replies = self._send_initial(target_ip, version)
        vn = _find_version_negotiation(replies)
        if vn is not None:
            version = self._pick_version(vn)
            if version is None:
                raise _ConnectionAbort("no common QUIC version")
            # Fresh validator state: a new connection attempt begins.
            replies = self._send_initial(target_ip, version)
            if _find_version_negotiation(replies) is not None:
                raise _ConnectionAbort("version negotiation loop")
        if not replies:
            raise _ConnectionAbort("no response to Initial")
        self.result.version = version
        self._handle_replies(replies)

        # Handshake flight: CRYPTO(finished) + ACK of server handshake pns.
        hs_frames: list[Frame] = [CryptoFrame(0, b"client-finished")]
        if self._server_pns[PacketNumberSpace.HANDSHAKE]:
            hs_frames.append(
                AckFrame.for_packets(self._server_pns[PacketNumberSpace.HANDSHAKE])
            )
        replies = self._send_with_retry(
            target_ip,
            lambda pn: LongHeaderPacket(
                packet_type=PacketType.HANDSHAKE,
                version=version,
                dcid=self._dcid,
                scid=self._scid,
                packet_number=pn,
                frames=tuple(hs_frames),
            ),
            PacketNumberSpace.HANDSHAKE,
        )
        self._handle_replies(replies)

        # Application flight: the GET, spread over request_packets packets.
        chunks = _split_request(request, self.config.request_packets)
        got_any_response = False
        for index, chunk in enumerate(chunks):
            frames: list[Frame] = [
                StreamFrame(
                    stream_id=0,
                    offset=sum(len(c) for c in chunks[:index]),
                    data=chunk,
                    fin=index == len(chunks) - 1,
                )
            ]
            if self._server_pns[PacketNumberSpace.APPLICATION]:
                frames.append(
                    AckFrame.for_packets(self._server_pns[PacketNumberSpace.APPLICATION])
                )
            replies = self._send_with_retry(
                target_ip,
                lambda pn, frames=tuple(frames): ShortHeaderPacket(
                    dcid=self._dcid, packet_number=pn, frames=frames
                ),
                PacketNumberSpace.APPLICATION,
            )
            if replies:
                got_any_response = True
            self._handle_replies(replies)
        if not got_any_response:
            raise _ConnectionAbort("no response to request")
        self.result.connected = True
        for _ in range(self.config.trailing_pings):
            from repro.quic.frames import PingFrame

            replies = self._send_with_retry(
                target_ip,
                lambda pn: ShortHeaderPacket(
                    dcid=self._dcid, packet_number=pn, frames=(PingFrame(),)
                ),
                PacketNumberSpace.APPLICATION,
                retries=0,
            )
            self._handle_replies(replies)
        self._send_packet(
            target_ip,
            ShortHeaderPacket(
                dcid=self._dcid,
                packet_number=self._next_pn(PacketNumberSpace.APPLICATION),
                frames=(ConnectionCloseFrame(error_code=0),),
            ),
            PacketNumberSpace.APPLICATION,
            record=False,
        )

    # ------------------------------------------------------------------
    # Sending helpers
    # ------------------------------------------------------------------
    def _send_initial(self, target_ip: str, version: QuicVersion) -> list[IpPacket]:
        # Initials are identical for every scanned site except the packet
        # number, so the frozen packet template is built once per
        # (version, pn) and shared across all connections (fast path).
        build = lambda pn: _initial_packet(  # noqa: E731 - local factory
            version, self._dcid, self._scid, pn
        )
        return self._send_with_retry(
            target_ip,
            build,
            PacketNumberSpace.INITIAL,
            retries=self.config.initial_retransmissions,
        )

    def _send_with_retry(
        self,
        target_ip: str,
        build,
        space: PacketNumberSpace,
        retries: int | None = None,
    ) -> list[IpPacket]:
        attempts = 1 + (
            retries if retries is not None else self.config.initial_retransmissions
        )
        replies: list[IpPacket] = []
        for attempt in range(attempts):
            packet = build(self._next_pn(space))
            replies = self._send_packet(target_ip, packet, space)
            if replies:
                return replies
            self.validator.on_timeout()
        return replies

    def _send_packet(
        self,
        target_ip: str,
        packet: QuicPacket,
        space: PacketNumberSpace,
        *,
        record: bool = True,
    ) -> list[IpPacket]:
        if self.config.enable_ecn:
            marking = self.validator.marking_for_next_packet()
        else:
            marking = ECN.NOT_ECT
        if record:
            self._sent_markings[space][packet.packet_number] = marking
            if self.config.enable_ecn:
                self.validator.on_packet_sent(marking)
        if (
            marking is ECN.NOT_ECT
            and self.config.grease_ecn
            and self.rng.random() < self.config.grease_probability
        ):
            # Greasing never feeds the validator: the codepoint rides the
            # IP header only, purely to stay visible to the path (§9.3).
            marking = ECN.ECT0
            self.result.greased_sent += 1
        ip_packet = IpPacket(
            version=self.config.ip_version,
            src=self.config.source_ip,
            dst=target_ip,
            ttl=64,
            tos=int(marking),
            payload=UdpPayload(self.config.source_port, QUIC_PORT, packet),
        )
        return self.wire.exchange(ip_packet)

    def _next_pn(self, space: PacketNumberSpace) -> int:
        pn = self._pn_next[space]
        self._pn_next[space] = pn + 1
        return pn

    def _pick_version(self, vn: VersionNegotiationPacket) -> QuicVersion | None:
        for version in self.config.versions:
            if version in vn.supported_versions:
                return version
        return None

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _handle_replies(self, replies: Iterable[IpPacket]) -> None:
        for ip_packet in replies:
            self._record_inbound_ecn(ip_packet)
            quic_packet = ip_packet.payload.data
            if isinstance(quic_packet, VersionNegotiationPacket):
                continue
            space = quic_packet.pn_space
            self._server_pns[space].add(quic_packet.packet_number)
            for frame in quic_packet.frames:
                if isinstance(frame, AckFrame):
                    self._process_ack(space, frame)
                elif isinstance(frame, CryptoFrame):
                    self._process_crypto(frame)
                elif isinstance(frame, StreamFrame):
                    self._process_stream(frame)

    def _record_inbound_ecn(self, ip_packet: IpPacket) -> None:
        codepoint = ip_packet.ecn
        self.result.inbound_ecn_counts = self.result.inbound_ecn_counts.with_observed(
            codepoint
        )
        if codepoint is not ECN.NOT_ECT:
            self.result.server_set_ect = True

    def _process_ack(self, space: PacketNumberSpace, ack: AckFrame) -> None:
        newly_acked_marked = 0
        for pn in ack.acked_packet_numbers():
            if pn in self._acked[space]:
                continue
            if pn not in self._sent_markings[space]:
                continue
            self._acked[space].add(pn)
            if self._sent_markings[space][pn] is not ECN.NOT_ECT:
                newly_acked_marked += 1
        if ack.ecn is not None:
            self._space_counts[space] = ack.ecn
            sample_counts = self._aggregate_counts()
        else:
            sample_counts = None
        self.validator.on_ack(
            AckEcnSample(newly_acked_marked=newly_acked_marked, counts=sample_counts)
        )

    def _aggregate_counts(self) -> EcnCounts | None:
        if not self._space_counts:
            return None
        total = EcnCounts()
        for counts in self._space_counts.values():
            total = total + counts
        return total

    def _process_crypto(self, frame: CryptoFrame) -> None:
        params = _extract_transport_params(frame.data)
        if params is not None:
            self.result.transport_fingerprint = params.fingerprint()

    def _process_stream(self, frame: StreamFrame) -> None:
        if isinstance(frame.data, bytes):
            self._response_body += frame.data
        response = _extract_response(frame)
        if response is not None:
            self._response = response

    @property
    def response(self) -> HttpResponse | None:
        """The parsed HTTP response, if one arrived."""
        return self._response


class _ConnectionAbort(Exception):
    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def _find_version_negotiation(
    replies: Iterable[IpPacket],
) -> VersionNegotiationPacket | None:
    for ip_packet in replies:
        payload = ip_packet.payload
        if isinstance(payload, UdpPayload) and isinstance(
            payload.data, VersionNegotiationPacket
        ):
            return payload.data
    return None


# ----------------------------------------------------------------------
# Packet / request templates (the per-exchange fast path)
# ----------------------------------------------------------------------
_CLIENT_HELLO_FRAMES = (CryptoFrame(0, b"client-hello"),)


@lru_cache(maxsize=64)
def _initial_packet(
    version: QuicVersion, dcid: bytes, scid: bytes, pn: int
) -> LongHeaderPacket:
    """Shared frozen Initial template; immutable, so reuse cannot leak
    state between connections (tested in test_quic_connection_edge)."""
    return LongHeaderPacket(
        packet_type=PacketType.INITIAL,
        version=version,
        dcid=dcid,
        scid=scid,
        packet_number=pn,
        frames=_CLIENT_HELLO_FRAMES,
    )


@lru_cache(maxsize=64)
def _request_template(
    method: str, path: str, headers: tuple[tuple[str, str], ...]
) -> tuple[bytes, bytes]:
    """Site-invariant (prefix, suffix) of the encoded GET; only the
    authority between them changes per scanned site."""
    head = f"{method} {path} HTTP/3\r\nauthority: ".encode()
    tail_lines = [f"{key}: {value}" for key, value in headers]
    tail = (
        "\r\n" + "\r\n".join(tail_lines) + "\r\n\r\n" if tail_lines else "\r\n\r\n"
    ).encode()
    return head, tail


# ----------------------------------------------------------------------
# Wire-format helpers
# ----------------------------------------------------------------------
_TP_MAGIC = b"TPRM"
_H3_MAGIC = b"H3RS"

# In-memory registry that lets the simulation attach structured responses
# to stream bytes without a full TLS + QPACK implementation.
_response_registry: dict[bytes, HttpResponse] = {}
_params_registry: dict[bytes, TransportParameters] = {}


_params_blob_cache: dict[TransportParameters, bytes] = {}


def embed_transport_params(params: TransportParameters) -> bytes:
    """Serialise transport parameters into a CRYPTO payload blob.

    Memoized per parameter set: server stacks embed the same week-invariant
    parameters into every handshake, so the varint encoding runs once.
    """
    blob = _params_blob_cache.get(params)
    if blob is None:
        blob = _TP_MAGIC + params.encode()
        _params_registry[blob] = params
        _params_blob_cache[params] = blob
    return blob


def _extract_transport_params(data: bytes) -> TransportParameters | None:
    if not data.startswith(_TP_MAGIC):
        return None
    cached = _params_registry.get(data)
    if cached is not None:
        return cached
    return TransportParameters.decode(data[len(_TP_MAGIC) :])


def embed_response(response: HttpResponse, key: bytes) -> bytes:
    """Attach a structured HTTP response to a stream-payload key."""
    blob = _H3_MAGIC + key
    _response_registry[blob] = response
    return blob


def _extract_response(frame: StreamFrame) -> HttpResponse | None:
    # Simulation hot path: stacks attach the structured response directly.
    if isinstance(frame.data, HttpResponse):
        return frame.data
    # Wire-realistic path: responses registered against encoded stream keys.
    if isinstance(frame.data, bytes) and frame.data.startswith(_H3_MAGIC):
        return _response_registry.get(frame.data)
    return None


def _split_request(request: HttpRequest, parts: int) -> list[bytes]:
    """Encode the GET and split it across ``parts`` stream chunks."""
    head, tail = _request_template(request.method, request.path, request.headers)
    raw = head + request.authority.encode() + tail
    parts = max(1, parts)
    chunk_size = max(1, (len(raw) + parts - 1) // parts)
    chunks = [raw[i : i + chunk_size] for i in range(0, len(raw), chunk_size)]
    while len(chunks) < parts:
        chunks.append(b"")
    return chunks[:parts]
