"""QUIC packet headers: long, short, and version negotiation (RFC 9000 §17).

No packet protection is applied — the study observes IP-level ECN bits
and plaintext-equivalent ACK counters, so encryption would only obscure
the code.  Headers and payloads still use the exact wire layout, which
lets tracebox quotes and the codec tests work on real bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import Union

from repro.quic.frames import Frame, decode_frames, encode_frames
from repro.quic.varint import decode_varint, encode_varint
from repro.quic.versions import QuicVersion

HEADER_FORM_LONG = 0x80
FIXED_BIT = 0x40


class PacketType(enum.Enum):
    INITIAL = 0x0
    ZERO_RTT = 0x1
    HANDSHAKE = 0x2
    RETRY = 0x3
    ONE_RTT = "1rtt"
    VERSION_NEGOTIATION = "vn"

    # Members are singletons and compare by identity, so the identity
    # hash is consistent — and much cheaper than Enum's name-based hash
    # in the per-packet dict lookups of the exchange hot loop.
    __hash__ = object.__hash__


class PacketNumberSpace(enum.Enum):
    """The three packet-number spaces; ECN counts are kept per space."""

    INITIAL = "initial"
    HANDSHAKE = "handshake"
    APPLICATION = "application"

    __hash__ = object.__hash__  # identity hash: see PacketType


SPACE_FOR_TYPE = {
    PacketType.INITIAL: PacketNumberSpace.INITIAL,
    PacketType.HANDSHAKE: PacketNumberSpace.HANDSHAKE,
    PacketType.ONE_RTT: PacketNumberSpace.APPLICATION,
    PacketType.ZERO_RTT: PacketNumberSpace.APPLICATION,
}


@dataclass(frozen=True, slots=True)
class LongHeaderPacket:
    """Initial / Handshake / 0-RTT packet."""

    packet_type: PacketType
    version: QuicVersion
    dcid: bytes
    scid: bytes
    packet_number: int
    frames: tuple[Frame, ...]
    token: bytes = b""  # Initial only

    def __post_init__(self) -> None:
        if self.packet_type not in (
            PacketType.INITIAL,
            PacketType.HANDSHAKE,
            PacketType.ZERO_RTT,
        ):
            raise ValueError(f"not a long-header data type: {self.packet_type}")
        if self.token and self.packet_type is not PacketType.INITIAL:
            raise ValueError("only Initial packets carry a token")

    @property
    def pn_space(self) -> PacketNumberSpace:
        return SPACE_FOR_TYPE[self.packet_type]


@dataclass(frozen=True, slots=True)
class ShortHeaderPacket:
    """1-RTT packet."""

    dcid: bytes
    packet_number: int
    frames: tuple[Frame, ...]

    @property
    def packet_type(self) -> PacketType:
        return PacketType.ONE_RTT

    @property
    def pn_space(self) -> PacketNumberSpace:
        return PacketNumberSpace.APPLICATION


@dataclass(frozen=True, slots=True)
class VersionNegotiationPacket:
    """Sent by servers that do not support the client's offered version."""

    dcid: bytes
    scid: bytes
    supported_versions: tuple[QuicVersion, ...]

    @property
    def packet_type(self) -> PacketType:
        return PacketType.VERSION_NEGOTIATION


QuicPacket = Union[LongHeaderPacket, ShortHeaderPacket, VersionNegotiationPacket]


def _pn_length(pn: int) -> int:
    if pn < 1 << 8:
        return 1
    if pn < 1 << 16:
        return 2
    if pn < 1 << 24:
        return 3
    return 4


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode_packet(packet: QuicPacket) -> bytes:
    """Encode one packet, caching by value.

    Packets are frozen, so equal packets share one encoded byte string —
    scan clients resend identical Initials and tracebox replays identical
    probes thousands of times per run.  Falls back to a direct encode for
    packets whose frames carry unhashable simulation payloads.
    """
    try:
        return _encode_packet_cached(packet)
    except TypeError:
        return _encode_packet(packet)


@lru_cache(maxsize=2048)
def _encode_packet_cached(packet: QuicPacket) -> bytes:
    return _encode_packet(packet)


def _encode_packet(packet: QuicPacket) -> bytes:
    if isinstance(packet, VersionNegotiationPacket):
        out = bytearray([HEADER_FORM_LONG])
        out += (0).to_bytes(4, "big")
        out += bytes([len(packet.dcid)]) + packet.dcid
        out += bytes([len(packet.scid)]) + packet.scid
        for version in packet.supported_versions:
            out += int(version).to_bytes(4, "big")
        return bytes(out)
    if isinstance(packet, LongHeaderPacket):
        pn_len = _pn_length(packet.packet_number)
        first = HEADER_FORM_LONG | FIXED_BIT
        first |= packet.packet_type.value << 4
        first |= pn_len - 1
        out = bytearray([first])
        out += int(packet.version).to_bytes(4, "big")
        out += bytes([len(packet.dcid)]) + packet.dcid
        out += bytes([len(packet.scid)]) + packet.scid
        if packet.packet_type is PacketType.INITIAL:
            out += encode_varint(len(packet.token)) + packet.token
        payload = encode_frames(packet.frames)
        out += encode_varint(pn_len + len(payload))
        out += packet.packet_number.to_bytes(pn_len, "big")
        out += payload
        return bytes(out)
    if isinstance(packet, ShortHeaderPacket):
        pn_len = _pn_length(packet.packet_number)
        first = FIXED_BIT | (pn_len - 1)
        out = bytearray([first])
        out += packet.dcid
        out += packet.packet_number.to_bytes(pn_len, "big")
        out += encode_frames(packet.frames)
        return bytes(out)
    raise TypeError(f"cannot encode packet: {packet!r}")


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def decode_packet(data: bytes, *, dcid_len: int = 8) -> QuicPacket:
    """Decode one packet.  Short headers need the connection's DCID length."""
    if not data:
        raise ValueError("empty packet")
    first = data[0]
    if first & HEADER_FORM_LONG:
        return _decode_long(data)
    return _decode_short(data, dcid_len)


def _decode_long(data: bytes) -> QuicPacket:
    first = data[0]
    version_raw = int.from_bytes(data[1:5], "big")
    offset = 5
    dcid_len = data[offset]
    offset += 1
    dcid = data[offset : offset + dcid_len]
    offset += dcid_len
    scid_len = data[offset]
    offset += 1
    scid = data[offset : offset + scid_len]
    offset += scid_len
    if version_raw == 0:
        versions = []
        while offset + 4 <= len(data):
            versions.append(QuicVersion(int.from_bytes(data[offset : offset + 4], "big")))
            offset += 4
        return VersionNegotiationPacket(dcid, scid, tuple(versions))
    version = QuicVersion(version_raw)
    packet_type = PacketType((first >> 4) & 0x3)
    token = b""
    if packet_type is PacketType.INITIAL:
        token_len, offset = decode_varint(data, offset)
        token = data[offset : offset + token_len]
        offset += token_len
    length, offset = decode_varint(data, offset)
    pn_len = (first & 0x3) + 1
    pn = int.from_bytes(data[offset : offset + pn_len], "big")
    offset += pn_len
    payload = data[offset : offset + length - pn_len]
    if len(payload) != length - pn_len:
        raise ValueError("long header payload truncated")
    return LongHeaderPacket(
        packet_type=packet_type,
        version=version,
        dcid=dcid,
        scid=scid,
        packet_number=pn,
        frames=tuple(decode_frames(payload)),
        token=token,
    )


def _decode_short(data: bytes, dcid_len: int) -> ShortHeaderPacket:
    first = data[0]
    if not first & FIXED_BIT:
        raise ValueError("fixed bit not set")
    pn_len = (first & 0x3) + 1
    dcid = data[1 : 1 + dcid_len]
    offset = 1 + dcid_len
    pn = int.from_bytes(data[offset : offset + pn_len], "big")
    offset += pn_len
    return ShortHeaderPacket(
        dcid=dcid,
        packet_number=pn,
        frames=tuple(decode_frames(data[offset:])),
    )
