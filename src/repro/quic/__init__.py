"""QUIC substrate: wire codecs, versions, frames, client connection.

The codec layer (varint, headers, frames, transport parameters) is a
genuine byte-level implementation of the RFC 9000 encodings used by the
measurements — most importantly the ACK frame's ECN count section.  The
connection layer drives a scan-style exchange (like the paper's modified
quic-go inside zgrab2) against an emulated server stack across the
simulated network, with packet-number spaces, one initial retransmission
and the adapted 5-packet/2-timeout ECN validation budget.
"""

from repro.quic.connection import QuicClient, QuicClientConfig, QuicConnectionResult
from repro.quic.frames import (
    AckFrame,
    ConnectionCloseFrame,
    CryptoFrame,
    HandshakeDoneFrame,
    PaddingFrame,
    PingFrame,
    StreamFrame,
    decode_frames,
    encode_frames,
)
from repro.quic.packets import (
    LongHeaderPacket,
    PacketNumberSpace,
    PacketType,
    ShortHeaderPacket,
    VersionNegotiationPacket,
    decode_packet,
    encode_packet,
)
from repro.quic.transport_params import TransportParameters
from repro.quic.varint import decode_varint, encode_varint
from repro.quic.versions import QuicVersion

__all__ = [
    "QuicClient",
    "QuicClientConfig",
    "QuicConnectionResult",
    "AckFrame",
    "ConnectionCloseFrame",
    "CryptoFrame",
    "HandshakeDoneFrame",
    "PaddingFrame",
    "PingFrame",
    "StreamFrame",
    "decode_frames",
    "encode_frames",
    "LongHeaderPacket",
    "PacketNumberSpace",
    "PacketType",
    "ShortHeaderPacket",
    "VersionNegotiationPacket",
    "decode_packet",
    "encode_packet",
    "TransportParameters",
    "decode_varint",
    "encode_varint",
    "QuicVersion",
]
