"""The pure exchange core: ``ExchangeInputs`` → scan outcome.

Both per-site exchange loops (QUIC and TCP) are factored into two
stages:

1. **Input derivation** (:func:`quic_exchange_inputs` /
   :func:`tcp_exchange_inputs`) resolves *everything the exchange can
   observe* into one :class:`ExchangeInputs` capsule: the target
   address of the scanned family, the vantage's frozen client config,
   the server stack's week-resolved :class:`StackBehavior` (QUIC) or
   :class:`TcpProfile` (TCP), the site's canned HTTP response, and the
   concrete ECMP path member the scan 5-tuple hashes onto at the
   week's route epoch.
2. **Execution** (:func:`run_quic_exchange` / :func:`run_tcp_exchange`)
   runs the scan client against exactly those inputs — nothing else is
   consulted, so two exchanges with equal inputs produce equal results
   and the identical sequence of virtual-clock advances.

That purity is what the replay cache (:mod:`repro.exchange.cache`)
exploits: when a path makes zero RNG draws (``NetworkPath.draw_free``),
the whole exchange is a deterministic function of the capsule, and a
cached ``(result, clock-advance sequence)`` replays byte-identically.
The authority the GET names is deliberately *not* part of the capsule's
outcome-relevant surface: servers never branch on request bytes (they
ack per packet and answer the fixed canned response on fin), and no
result field carries the authority — pinned by the golden tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.http.messages import HttpRequest
from repro.netsim.clock import Clock
from repro.netsim.packet import FlowKey
from repro.quic.connection import QUIC_PORT, QuicClient, QuicClientConfig, QuicConnectionResult
from repro.quicstacks.base import QuicServerStack
from repro.scanner.wire import ScanWire
from repro.tcp.client import HTTPS_PORT, TcpClientConfig, TcpScanClient, TcpScanOutcome
from repro.tcp.server import TcpServerStack
from repro.util.rng import RngStream
from repro.util.weeks import Week

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.web.world import Site, World

#: Exchange kinds (aligned with the engine's event kinds: QUIC first).
QUIC_EXCHANGE = 0
TCP_EXCHANGE = 1

#: TTL both scan clients stamp on outgoing packets.  Paths shorter than
#: this never expire a scan packet, so the ICMP machinery (the one
#: clock-*reading* part of traversal) stays untouched.
SCAN_TTL = 64

#: Wall-clock a scan client burns against a dead or QUIC-less target
#: before giving up (shared by the QUIC and TCP scanners so both
#: advance the virtual clock identically).
DEAD_TARGET_TIMEOUT = 10.0


@dataclass(slots=True)
class ExchangeInputs:
    """Everything one site exchange is allowed to depend on.

    ``behavior`` (QUIC) / ``tcp_profile`` (TCP) is ``None`` for a dead
    target — unreachable policy, no QUIC listener this week — and
    ``target_ip`` is ``None`` when the site has no address of the
    scanned family.  ``path`` / ``response`` are only set for live
    targets.  The capsule is week-free by construction except through
    the week-*bucketed* members: the behaviour value (stable within a
    stack's behaviour epoch) and the path object (stable within a
    route epoch), which is exactly the invalidation granularity the
    replay cache wants.
    """

    kind: int
    ip_version: int
    target_ip: str | None
    route_key: str
    client_config: QuicClientConfig | TcpClientConfig
    behavior: object | None = None
    tcp_profile: object | None = None
    response: object | None = None
    path: object | None = None


class RecordingClock:
    """A clock wrapper that logs every advance while forwarding it.

    The recorded tuple *is* the exchange's observable time behaviour:
    replaying the same advances against any clock reproduces the exact
    float trajectory (same additions in the same order), which keeps
    cached exchanges bit-identical to fresh ones in both the shared-
    and per-site-clock execution modes.
    """

    __slots__ = ("clock", "advances")

    def __init__(self, clock: Clock):
        self.clock = clock
        self.advances: list[float] = []

    @property
    def now(self) -> float:
        return self.clock.now

    def advance(self, seconds: float) -> float:
        self.advances.append(seconds)
        return self.clock.advance(seconds)


# ----------------------------------------------------------------------
# Input derivation
# ----------------------------------------------------------------------
def _resolve_scan_path(
    world: "World",
    vantage_id: str,
    route_key: str,
    week: Week,
    flow: FlowKey,
    path_memo: dict | None,
    memo_key: tuple | None,
):
    """The concrete ECMP member the scan flow traverses this week.

    ``path_memo`` (per-cache) short-circuits the flow hash: the 5-tuple
    is week-invariant, so the selected member only changes when the
    route *epoch* does — the memo revalidates template identity per
    call and re-selects only then.
    """
    template = world.network.template_for(vantage_id, route_key, week)
    if path_memo is not None:
        cached = path_memo.get(memo_key)
        if cached is not None and cached[0] is template:
            return cached[1]
    path = template.select(flow)
    if path_memo is not None:
        path_memo[memo_key] = (template, path)
    return path


def quic_exchange_inputs(
    world: "World",
    site: "Site",
    week: Week,
    vantage_id: str,
    client_config: QuicClientConfig,
    *,
    path_memo: dict | None = None,
) -> ExchangeInputs:
    """Derive the QUIC exchange capsule for one (site, week, vantage)."""
    ip_version = client_config.ip_version
    target_ip = site.ip if ip_version == 4 else site.ipv6
    route_key = site.route_key + ("/v6" if ip_version == 6 else "")
    inputs = ExchangeInputs(
        QUIC_EXCHANGE, ip_version, target_ip, route_key, client_config
    )
    if target_ip is None:
        return inputs
    policy = world.site_policy(site, vantage_id)
    if policy.reachable and policy.quic_profile is not None:
        behavior = world.stack_registry.behavior(policy.quic_profile, week)
        if behavior.quic_enabled:
            inputs.behavior = behavior
    if inputs.behavior is None:
        return inputs
    inputs.response = world.site_response(site)
    flow = FlowKey(
        client_config.source_ip,
        target_ip,
        client_config.source_port,
        QUIC_PORT,
        "udp",
    )
    memo_key = (site.index, vantage_id, ip_version, QUIC_EXCHANGE)
    inputs.path = _resolve_scan_path(
        world, vantage_id, route_key, week, flow, path_memo, memo_key
    )
    return inputs


def tcp_exchange_inputs(
    world: "World",
    site: "Site",
    week: Week,
    vantage_id: str,
    client_config: TcpClientConfig,
    *,
    path_memo: dict | None = None,
) -> ExchangeInputs:
    """Derive the TCP exchange capsule for one (site, week, vantage)."""
    ip_version = client_config.ip_version
    target_ip = site.ip if ip_version == 4 else site.ipv6
    route_key = site.route_key + ("/v6" if ip_version == 6 else "")
    inputs = ExchangeInputs(
        TCP_EXCHANGE, ip_version, target_ip, route_key, client_config
    )
    if target_ip is None:
        return inputs
    policy = world.site_policy(site, vantage_id)
    if not policy.reachable:
        return inputs
    inputs.tcp_profile = policy.tcp_profile
    inputs.response = world.site_response(site)
    flow = FlowKey(
        client_config.source_ip,
        target_ip,
        client_config.source_port,
        HTTPS_PORT,
        "tcp",
    )
    memo_key = (site.index, vantage_id, ip_version, TCP_EXCHANGE)
    inputs.path = _resolve_scan_path(
        world, vantage_id, route_key, week, flow, path_memo, memo_key
    )
    return inputs


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _response_factory(response):
    return lambda _raw: response


def run_quic_exchange(
    world: "World",
    inputs: ExchangeInputs,
    week: Week,
    vantage_id: str,
    authority: str,
    *,
    rng: RngStream | None = None,
    clock=None,
) -> QuicConnectionResult:
    """Execute one QUIC exchange from its derived inputs."""
    if inputs.target_ip is None:
        return QuicConnectionResult(error="no address for this family")
    if inputs.behavior is None:
        result = QuicConnectionResult(error="no QUIC listener")
        # The client still burns its timeout budget against dead targets.
        (clock if clock is not None else world.clock).advance(DEAD_TARGET_TIMEOUT)
        return result
    server = QuicServerStack(
        inputs.behavior,
        _response_factory(inputs.response),
        ip_version=inputs.ip_version,
    )
    wire = ScanWire(
        world,
        vantage_id,
        inputs.route_key,
        server.handle_datagram,
        week,
        rng=rng,
        clock=clock,
        path=inputs.path,
    )
    client = QuicClient(wire, inputs.client_config)
    return client.fetch(inputs.target_ip, HttpRequest(authority=authority))


def run_tcp_exchange(
    world: "World",
    inputs: ExchangeInputs,
    week: Week,
    vantage_id: str,
    authority: str,
    *,
    rng: RngStream | None = None,
    clock=None,
) -> TcpScanOutcome:
    """Execute one TCP exchange from its derived inputs."""
    if inputs.target_ip is None:
        return TcpScanOutcome(error="no address for this family")
    if inputs.tcp_profile is None:
        (clock if clock is not None else world.clock).advance(DEAD_TARGET_TIMEOUT)
        return TcpScanOutcome(error="connection timeout")
    server = TcpServerStack(inputs.tcp_profile, _response_factory(inputs.response))
    wire = ScanWire(
        world,
        vantage_id,
        inputs.route_key,
        server.handle_segment,
        week,
        rng=rng,
        clock=clock,
        path=inputs.path,
    )
    client = TcpScanClient(wire, inputs.client_config)
    return client.fetch(inputs.target_ip, HttpRequest(authority=authority))
