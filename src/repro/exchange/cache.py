"""Exchange-outcome replay cache.

A longitudinal campaign re-runs the same exchanges over and over: the
paper's weekly scans mostly re-measure stable targets, and in the
simulation a site's exchange inputs (behaviour epoch, client config,
route epoch, canned response) repeat week after week.  When the path
additionally makes zero RNG draws (``NetworkPath.draw_free`` — true
for every route the calibrated world builds), the exchange is a pure
function of its :class:`~repro.exchange.core.ExchangeInputs`, so the
second occurrence of a key can skip packet encode/clone and the whole
connection state machine: a dict lookup returns the result object plus
the exact virtual-clock advance sequence to replay.

Key derivation tokenises the capsule members through interning tables
(:class:`_TokenTable`): equality is by *value* — two weeks in the same
behaviour epoch resolve different :class:`StackBehavior` objects that
compare equal and therefore share a token — with an id fast path so
the per-event cost after warm-up is a few dict hits.  Interned objects
are pinned (strong references), so an id can never be recycled into a
stale token.

What the key contains, per kind (the property-tested invariant is that
no two capsules differing in an outcome-relevant member share a key):

* no-address / dead-target sentinels (family-tagged) — these outcomes
  are constants;
* live: (kind, client-config token, behaviour-or-TCP-profile token,
  path-member token, response token).

What it deliberately omits: the authority (request bytes never reach
any observable), the week itself (only its bucketed projections
matter), the shard layout and the RNG substream (a draw-free exchange
never consults it).  An exchange whose path *can* draw is reported
``uncacheable`` and always runs fresh, preserving the RNG stream
position draw for draw.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exchange.core import ExchangeInputs, QUIC_EXCHANGE, SCAN_TTL
from repro.obs.metrics import safe_ratio

#: Key sentinels for the constant-outcome cases.
_NO_ADDRESS = "no-address"
_DEAD = "dead"


@dataclass(slots=True)
class ExchangeOutcome:
    """What replay needs: the result object + the advance trajectory."""

    result: object
    advances: tuple[float, ...]


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting (``uncacheable`` = ran fresh by necessity)."""

    hits: int = 0
    misses: int = 0
    uncacheable: int = 0

    def snapshot(self) -> tuple[int, int, int]:
        return (self.hits, self.misses, self.uncacheable)

    def add(self, hits: int, misses: int, uncacheable: int) -> None:
        self.hits += hits
        self.misses += misses
        self.uncacheable += uncacheable

    @property
    def hit_rate(self) -> float:
        # Registry convention: derived ratios are 0.0 on an empty
        # denominator (repro.obs.metrics.safe_ratio).
        return safe_ratio(self.hits, self.hits + self.misses)


class _TokenTable:
    """Interns values to small ints: equal values → one token.

    ``token`` hashes the value at most once per distinct *object*; the
    id fast path covers repeat lookups of registry-/lru-cached objects.
    Every object that ever received an id entry is pinned so CPython
    cannot recycle its id for a different value.
    """

    __slots__ = ("_by_id", "_by_value", "_pinned")

    def __init__(self) -> None:
        self._by_id: dict[int, int] = {}
        self._by_value: dict[object, int] = {}
        self._pinned: list[object] = []

    def token(self, value: object) -> int:
        token = self._by_id.get(id(value))
        if token is None:
            token = self._by_value.get(value)
            if token is None:
                token = len(self._by_value)
                self._by_value[value] = token
            self._by_id[id(value)] = token
            self._pinned.append(value)
        return token


class _IdentityTable:
    """Interns unhashable-by-value objects (paths) by identity, pinned."""

    __slots__ = ("_by_id", "_pinned")

    def __init__(self) -> None:
        self._by_id: dict[int, int] = {}
        self._pinned: list[object] = []

    def token(self, value: object) -> int:
        token = self._by_id.get(id(value))
        if token is None:
            token = len(self._by_id)
            self._by_id[id(value)] = token
            self._pinned.append(value)
        return token


class ExchangeCache:
    """Replay cache for site exchanges (one per scan engine).

    ``path_memo`` additionally memoises the per-site ECMP selection for
    key derivation (the flow hash is a SHA-256; the 5-tuple is
    week-invariant, so it only needs recomputing on route-epoch
    changes).  Fork-pool workers inherit the cache by fork and
    accumulate independently; their stats travel back in the shard
    codec buffers.
    """

    __slots__ = ("stats", "path_memo", "_outcomes", "_values", "_paths")

    def __init__(self) -> None:
        self.stats = CacheStats()
        self.path_memo: dict = {}
        self._outcomes: dict[tuple, ExchangeOutcome] = {}
        self._values = _TokenTable()
        self._paths = _IdentityTable()

    def __len__(self) -> int:
        return len(self._outcomes)

    # ------------------------------------------------------------------
    def key_for(self, inputs: ExchangeInputs) -> tuple | None:
        """The replay key of an exchange, or ``None`` if not replayable.

        ``None`` means the exchange may consult the RNG stream (or
        could expire its TTL and touch clock-dependent ICMP state), so
        it must run fresh every time.
        """
        kind = inputs.kind
        if inputs.target_ip is None:
            return (kind, _NO_ADDRESS, inputs.ip_version)
        server = inputs.behavior if kind == QUIC_EXCHANGE else inputs.tcp_profile
        if server is None:
            return (kind, _DEAD, inputs.ip_version)
        path = inputs.path
        if path is None or not path.draw_free or path.length >= SCAN_TTL:
            return None
        return (
            kind,
            self._values.token(inputs.client_config),
            self._values.token(server),
            self._paths.token(path),
            self._values.token(inputs.response),
        )

    # ------------------------------------------------------------------
    def fetch(self, key: tuple) -> ExchangeOutcome | None:
        """Look up a key, accounting the hit or miss."""
        outcome = self._outcomes.get(key)
        if outcome is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return outcome

    def store(self, key: tuple, outcome: ExchangeOutcome) -> None:
        self._outcomes[key] = outcome

    def clear(self) -> None:
        """Drop cached outcomes, memos and interned objects.

        Keeps only the stats counters.  The token tables go too: once
        no key can reference their tokens, keeping them would pin every
        path/behaviour/response object of the invalidated world
        generation alive for the engine's lifetime.
        """
        self._outcomes.clear()
        self.path_memo.clear()
        self._values = _TokenTable()
        self._paths = _IdentityTable()


def replay_outcome(outcome: ExchangeOutcome, clock) -> object:
    """Re-apply a cached exchange: same advances, same result object."""
    advance = clock.advance
    for seconds in outcome.advances:
        advance(seconds)
    return outcome.result
