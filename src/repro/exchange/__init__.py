"""Exchange core + outcome replay cache (see docs/architecture.md).

:mod:`repro.exchange.core` factors the per-site QUIC/TCP exchanges into
a pure ``ExchangeInputs`` → outcome function; :mod:`repro.exchange.cache`
replays outcomes when the derived inputs repeat — the campaign-scale
shortcut behind the scan engine's warm-cache throughput.
"""

from repro.exchange.cache import (
    CacheStats,
    ExchangeCache,
    ExchangeOutcome,
    replay_outcome,
)
from repro.exchange.core import (
    DEAD_TARGET_TIMEOUT,
    QUIC_EXCHANGE,
    SCAN_TTL,
    TCP_EXCHANGE,
    ExchangeInputs,
    RecordingClock,
    quic_exchange_inputs,
    run_quic_exchange,
    run_tcp_exchange,
    tcp_exchange_inputs,
)

__all__ = [
    "CacheStats",
    "DEAD_TARGET_TIMEOUT",
    "ExchangeCache",
    "ExchangeInputs",
    "ExchangeOutcome",
    "QUIC_EXCHANGE",
    "RecordingClock",
    "SCAN_TTL",
    "TCP_EXCHANGE",
    "quic_exchange_inputs",
    "replay_outcome",
    "run_quic_exchange",
    "run_tcp_exchange",
    "tcp_exchange_inputs",
]
