"""zgrab2-analogue scanner: QUIC HTTP/3 and TCP HTTP ECN scans."""

from repro.scanner.quic_scan import QuicScanConfig, scan_site_quic
from repro.scanner.results import DomainObservation, SiteScanRecord
from repro.scanner.tcp_scan import TcpScanConfig, scan_site_tcp
from repro.scanner.wire import ScanWire

__all__ = [
    "QuicScanConfig",
    "scan_site_quic",
    "DomainObservation",
    "SiteScanRecord",
    "TcpScanConfig",
    "scan_site_tcp",
    "ScanWire",
]
