"""Scan result records (what the adapted zgrab2 logged per target)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.terminology import EcnSupport
from repro.core.validation import ValidationOutcome
from repro.quic.connection import QuicConnectionResult
from repro.tcp.client import TcpScanOutcome


@dataclass(slots=True)
class SiteScanRecord:
    """Per-server-IP scan outcome (hosts behave per IP, §4.3)."""

    site_index: int
    ip: str
    quic: QuicConnectionResult | None = None
    tcp: TcpScanOutcome | None = None
    traced: bool = False


def server_label_of(quic: QuicConnectionResult | None) -> str:
    """Figure 3 server grouping of one QUIC result.

    The result-level entry point: store-backed analysis labels each
    site result row once and fans the label out by index; the
    observation property below delegates here so the two paths share
    one grouping rule.
    """
    if quic is None or not quic.connected:
        return "Unavailable"
    header = quic.server_header
    if header is None:
        return "Unknown"
    if header in ("LiteSpeed", "Pepyaka"):
        return header
    return "Other"


class ObservationDerived:
    """Derived per-domain properties shared by every observation shape.

    Everything here reads only ``self.quic``, so the eager
    :class:`DomainObservation` and the columnar
    :class:`repro.store.views.ObservationView` inherit one definition —
    the store path cannot drift from the object path.  Slot-free on
    purpose (``__slots__ = ()``): both subclasses are slotted.
    """

    __slots__ = ()

    quic: QuicConnectionResult | None

    @property
    def quic_available(self) -> bool:
        return self.quic is not None and self.quic.connected

    @property
    def mirroring(self) -> bool:
        return self.quic is not None and self.quic.mirroring

    @property
    def uses_ecn(self) -> bool:
        return self.quic is not None and self.quic.server_set_ect

    @property
    def validation_outcome(self) -> ValidationOutcome | None:
        if self.quic is None:
            return None
        return self.quic.validation_outcome

    @property
    def support(self) -> EcnSupport | None:
        if self.quic is None:
            return None
        return EcnSupport(
            mirroring=self.quic.mirroring,
            capable=self.quic.validation_outcome is ValidationOutcome.CAPABLE,
            use=self.quic.server_set_ect,
        )

    @property
    def server_label(self) -> str:
        """Figure 3 grouping: LiteSpeed / Pepyaka / Other / Unknown."""
        return server_label_of(self.quic)

    @property
    def version_label(self) -> str | None:
        if self.quic is None or self.quic.version is None:
            return None
        return self.quic.version.label


@dataclass(slots=True)
class DomainObservation(ObservationDerived):
    """Everything one weekly scan learned about one domain.

    A weekly run materialises one of these per domain, so the class is
    slotted and the scan engine constructs it positionally from
    precomputed prototype tuples — keep new fields appended and defaulted.
    Store-backed runs skip the materialisation entirely and serve the
    same fields through :class:`repro.store.views.ObservationView`.
    """

    domain: str
    population: str  # "cno" | "toplist"
    lists: tuple[str, ...]
    parked: bool
    resolved: bool
    ip: str | None = None
    org: str = "<unknown>"
    site_index: int = -1
    quic_attempted: bool = False
    quic: QuicConnectionResult | None = None
    tcp: TcpScanOutcome | None = None
