"""TCP HTTP ECN scan of one server site (§4.1, §6.3).

Like :mod:`repro.scanner.quic_scan`, a thin input-derivation layer over
the pure exchange core in :mod:`repro.exchange.core`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.codepoints import ECN
from repro.exchange.core import (
    DEAD_TARGET_TIMEOUT,
    ExchangeInputs,
    run_tcp_exchange,
    tcp_exchange_inputs,
)
from repro.netsim.clock import Clock
from repro.tcp.client import TcpClientConfig, TcpScanOutcome
from repro.util.rng import RngStream
from repro.util.weeks import Week
from repro.web.world import Site, World

__all__ = [
    "DEAD_TARGET_TIMEOUT",
    "TcpScanConfig",
    "scan_site_tcp",
    "tcp_client_config",
]


@dataclass(frozen=True)
class TcpScanConfig:
    """TCP scan parameters; CE probing is the §6.3 comparison mode."""

    probe_codepoint: ECN = ECN.CE
    ip_version: int = 4


@lru_cache(maxsize=128)
def tcp_client_config(config: TcpScanConfig, source_ip: str) -> TcpClientConfig:
    """Invariant client config per (scan config, vantage); see quic_scan."""
    return TcpClientConfig(
        probe_codepoint=config.probe_codepoint,
        source_ip=source_ip,
        ip_version=config.ip_version,
    )


def scan_site_tcp(
    world: World,
    site: Site,
    week: Week,
    vantage_id: str = "main-aachen",
    config: TcpScanConfig | None = None,
    *,
    authority: str | None = None,
    rng: RngStream | None = None,
    clock: Clock | None = None,
    inputs: ExchangeInputs | None = None,
) -> TcpScanOutcome:
    """Run the TCP ECN scan against one site.

    ``rng``/``clock`` override the shared network stream and clock for
    sharded execution, exactly as in :func:`scan_site_quic`; ``inputs``
    skips re-deriving the exchange capsule.
    """
    config = config or TcpScanConfig()
    if inputs is None:
        client_config = tcp_client_config(
            config, world.vantages[vantage_id].source_ip
        )
        inputs = tcp_exchange_inputs(world, site, week, vantage_id, client_config)
    return run_tcp_exchange(
        world,
        inputs,
        week,
        vantage_id,
        authority or f"www.{site.route_key.split('/')[0]}.example",
        rng=rng,
        clock=clock,
    )
