"""TCP HTTP ECN scan of one server site (§4.1, §6.3)."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.codepoints import ECN
from repro.http.messages import HttpRequest
from repro.netsim.clock import Clock
from repro.scanner.quic_scan import DEAD_TARGET_TIMEOUT
from repro.scanner.wire import ScanWire
from repro.tcp.client import TcpClientConfig, TcpScanClient, TcpScanOutcome
from repro.util.rng import RngStream
from repro.util.weeks import Week
from repro.web.world import Site, World


@dataclass(frozen=True)
class TcpScanConfig:
    """TCP scan parameters; CE probing is the §6.3 comparison mode."""

    probe_codepoint: ECN = ECN.CE
    ip_version: int = 4


@lru_cache(maxsize=128)
def _client_config(config: TcpScanConfig, source_ip: str) -> TcpClientConfig:
    """Invariant client config per (scan config, vantage); see quic_scan."""
    return TcpClientConfig(
        probe_codepoint=config.probe_codepoint,
        source_ip=source_ip,
        ip_version=config.ip_version,
    )


def scan_site_tcp(
    world: World,
    site: Site,
    week: Week,
    vantage_id: str = "main-aachen",
    config: TcpScanConfig | None = None,
    *,
    authority: str | None = None,
    rng: RngStream | None = None,
    clock: Clock | None = None,
) -> TcpScanOutcome:
    """Run the TCP ECN scan against one site.

    ``rng``/``clock`` override the shared network stream and clock for
    sharded execution, exactly as in :func:`scan_site_quic`.
    """
    config = config or TcpScanConfig()
    vantage = world.vantages[vantage_id]
    target_ip = site.ip if config.ip_version == 4 else site.ipv6
    if target_ip is None:
        return TcpScanOutcome(error="no address for this family")
    server = world.tcp_server(site, week, vantage_id)
    if server is None:
        (clock if clock is not None else world.clock).advance(DEAD_TARGET_TIMEOUT)
        return TcpScanOutcome(error="connection timeout")
    route_key = site.route_key + ("/v6" if config.ip_version == 6 else "")
    wire = ScanWire(
        world, vantage_id, route_key, server.handle_segment, week, rng=rng, clock=clock
    )
    client = TcpScanClient(wire, _client_config(config, vantage.source_ip))
    request = HttpRequest(authority=authority or f"www.{site.route_key.split('/')[0]}.example")
    return client.fetch(target_ip, request)
