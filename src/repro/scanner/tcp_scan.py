"""TCP HTTP ECN scan of one server site (§4.1, §6.3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.codepoints import ECN
from repro.http.messages import HttpRequest
from repro.scanner.quic_scan import DEAD_TARGET_TIMEOUT
from repro.scanner.wire import ScanWire
from repro.tcp.client import TcpClientConfig, TcpScanClient, TcpScanOutcome
from repro.util.weeks import Week
from repro.web.world import Site, World


@dataclass(frozen=True)
class TcpScanConfig:
    """TCP scan parameters; CE probing is the §6.3 comparison mode."""

    probe_codepoint: ECN = ECN.CE
    ip_version: int = 4


def scan_site_tcp(
    world: World,
    site: Site,
    week: Week,
    vantage_id: str = "main-aachen",
    config: TcpScanConfig | None = None,
    *,
    authority: str | None = None,
) -> TcpScanOutcome:
    """Run the TCP ECN scan against one site."""
    config = config or TcpScanConfig()
    vantage = world.vantages[vantage_id]
    target_ip = site.ip if config.ip_version == 4 else site.ipv6
    if target_ip is None:
        return TcpScanOutcome(error="no address for this family")
    server = world.tcp_server(site, week, vantage_id)
    if server is None:
        world.clock.advance(DEAD_TARGET_TIMEOUT)
        return TcpScanOutcome(error="connection timeout")
    route_key = site.route_key + ("/v6" if config.ip_version == 6 else "")
    wire = ScanWire(world, vantage_id, route_key, server.handle_segment, week)
    client = TcpScanClient(
        wire,
        TcpClientConfig(
            probe_codepoint=config.probe_codepoint,
            source_ip=vantage.source_ip,
            ip_version=config.ip_version,
        ),
    )
    request = HttpRequest(authority=authority or f"www.{site.route_key.split('/')[0]}.example")
    return client.fetch(target_ip, request)
