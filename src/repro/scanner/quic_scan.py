"""QUIC HTTP/3 ECN scan of one server site (§4.1).

The scan issues a single HTTPS GET to the ``www`` name, never follows
``Location`` or ``Alt-Svc``, uses the adapted retransmission behaviour
(one Initial retransmission) and the reduced ECN validation budget of
5 packets / 2 timeouts.

The exchange itself lives in :mod:`repro.exchange.core`: this module
derives the inputs capsule (client config, week-resolved behaviour,
ECMP path member, canned response) and hands it to the pure executor —
the same two-stage split the engine's replay cache keys on.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.codepoints import ECN
from repro.core.validation import ValidationConfig
from repro.exchange.core import (
    DEAD_TARGET_TIMEOUT,
    ExchangeInputs,
    quic_exchange_inputs,
    run_quic_exchange,
)
from repro.netsim.clock import Clock
from repro.quic.connection import QuicClientConfig, QuicConnectionResult
from repro.util.rng import RngStream
from repro.util.weeks import Week
from repro.web.world import Site, World

__all__ = [
    "DEAD_TARGET_TIMEOUT",
    "QuicScanConfig",
    "quic_client_config",
    "scan_site_quic",
]


@dataclass(frozen=True)
class QuicScanConfig:
    """Scan parameters (defaults follow the paper's adaptations)."""

    probe_codepoint: ECN = ECN.ECT0
    testing_packets: int = 5
    max_timeouts: int = 2
    ip_version: int = 4
    #: 1-RTT packets carrying the GET; None sizes the request so the whole
    #: testing budget is spent (budget - initial - handshake packets).
    request_packets: int | None = None

    def effective_request_packets(self) -> int:
        if self.request_packets is not None:
            return self.request_packets
        return max(1, self.testing_packets - 2)

    def validation(self) -> ValidationConfig:
        return ValidationConfig(
            testing_packets=self.testing_packets,
            max_timeouts=self.max_timeouts,
            probe_codepoint=self.probe_codepoint,
        )


@lru_cache(maxsize=128)
def quic_client_config(config: QuicScanConfig, source_ip: str) -> QuicClientConfig:
    """Week- and site-invariant client config per (scan config, vantage).

    Both inputs are frozen, so one immutable config object (and its
    embedded :class:`ValidationConfig`) is shared by every exchange a
    campaign issues instead of being rebuilt per site per week — and
    the replay cache can token it by identity after the first hash.
    """
    return QuicClientConfig(
        validation=config.validation(),
        source_ip=source_ip,
        ip_version=config.ip_version,
        request_packets=config.effective_request_packets(),
    )


def scan_site_quic(
    world: World,
    site: Site,
    week: Week,
    vantage_id: str = "main-aachen",
    config: QuicScanConfig | None = None,
    *,
    authority: str | None = None,
    rng: RngStream | None = None,
    clock: Clock | None = None,
    inputs: ExchangeInputs | None = None,
) -> QuicConnectionResult:
    """Run the QUIC ECN scan against one site.

    Returns a (possibly failed) :class:`QuicConnectionResult`; an
    unreachable or QUIC-less site yields ``connected=False``.
    ``rng``/``clock`` override the world's shared network stream and
    virtual clock — the sharded engine passes per-site substreams here.
    ``inputs`` skips re-deriving the exchange capsule for callers (the
    replay cache) that already hold it.
    """
    config = config or QuicScanConfig()
    if inputs is None:
        client_config = quic_client_config(
            config, world.vantages[vantage_id].source_ip
        )
        inputs = quic_exchange_inputs(world, site, week, vantage_id, client_config)
    return run_quic_exchange(
        world,
        inputs,
        week,
        vantage_id,
        authority or f"www.{site.route_key.split('/')[0]}.example",
        rng=rng,
        clock=clock,
    )
