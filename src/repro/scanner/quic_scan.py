"""QUIC HTTP/3 ECN scan of one server site (§4.1).

The scan issues a single HTTPS GET to the ``www`` name, never follows
``Location`` or ``Alt-Svc``, uses the adapted retransmission behaviour
(one Initial retransmission) and the reduced ECN validation budget of
5 packets / 2 timeouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.codepoints import ECN
from repro.core.validation import ValidationConfig
from repro.http.messages import HttpRequest
from repro.netsim.clock import Clock
from repro.quic.connection import QuicClient, QuicClientConfig, QuicConnectionResult
from repro.scanner.wire import ScanWire
from repro.util.rng import RngStream
from repro.util.weeks import Week
from repro.web.world import Site, World

#: Wall-clock a scan client burns against a dead or QUIC-less target
#: before giving up (shared with the TCP scanner so both advance the
#: virtual clock identically).
DEAD_TARGET_TIMEOUT = 10.0


@dataclass(frozen=True)
class QuicScanConfig:
    """Scan parameters (defaults follow the paper's adaptations)."""

    probe_codepoint: ECN = ECN.ECT0
    testing_packets: int = 5
    max_timeouts: int = 2
    ip_version: int = 4
    #: 1-RTT packets carrying the GET; None sizes the request so the whole
    #: testing budget is spent (budget - initial - handshake packets).
    request_packets: int | None = None

    def effective_request_packets(self) -> int:
        if self.request_packets is not None:
            return self.request_packets
        return max(1, self.testing_packets - 2)

    def validation(self) -> ValidationConfig:
        return ValidationConfig(
            testing_packets=self.testing_packets,
            max_timeouts=self.max_timeouts,
            probe_codepoint=self.probe_codepoint,
        )


@lru_cache(maxsize=128)
def _client_config(config: QuicScanConfig, source_ip: str) -> QuicClientConfig:
    """Week- and site-invariant client config per (scan config, vantage).

    Both inputs are frozen, so one immutable config object (and its
    embedded :class:`ValidationConfig`) is shared by every exchange a
    campaign issues instead of being rebuilt per site per week.
    """
    return QuicClientConfig(
        validation=config.validation(),
        source_ip=source_ip,
        ip_version=config.ip_version,
        request_packets=config.effective_request_packets(),
    )


def scan_site_quic(
    world: World,
    site: Site,
    week: Week,
    vantage_id: str = "main-aachen",
    config: QuicScanConfig | None = None,
    *,
    authority: str | None = None,
    rng: RngStream | None = None,
    clock: Clock | None = None,
) -> QuicConnectionResult:
    """Run the QUIC ECN scan against one site.

    Returns a (possibly failed) :class:`QuicConnectionResult`; an
    unreachable or QUIC-less site yields ``connected=False``.
    ``rng``/``clock`` override the world's shared network stream and
    virtual clock — the sharded engine passes per-site substreams here.
    """
    config = config or QuicScanConfig()
    vantage = world.vantages[vantage_id]
    target_ip = site.ip if config.ip_version == 4 else site.ipv6
    if target_ip is None:
        return QuicConnectionResult(error="no address for this family")
    server = world.quic_server(
        site, week, vantage_id, ip_version=config.ip_version
    )
    if server is None:
        result = QuicConnectionResult(error="no QUIC listener")
        # The client still burns its timeout budget against dead targets.
        (clock if clock is not None else world.clock).advance(DEAD_TARGET_TIMEOUT)
        return result
    route_key = site.route_key + ("/v6" if config.ip_version == 6 else "")
    wire = ScanWire(
        world, vantage_id, route_key, server.handle_datagram, week, rng=rng, clock=clock
    )
    client = QuicClient(wire, _client_config(config, vantage.source_ip))
    request = HttpRequest(authority=authority or f"www.{site.route_key.split('/')[0]}.example")
    return client.fetch(target_ip, request)
