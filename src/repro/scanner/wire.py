"""The wire between a scan client and a simulated host.

Forward packets traverse the registered route (where impairing routers
live); responses are delivered directly — the reverse path is invisible
to all of the paper's measurements (§6.1), so simulating transforms
there would only slow things down without observable effect.

Two hot-path properties are exploited here:

* One scan connection keeps one 5-tuple, so the ECMP variant the flow
  hashes onto is resolved once on the first packet and every later
  packet traverses the cached :class:`~repro.netsim.path.NetworkPath`
  directly, skipping the route-epoch and flow-hash lookups.
* The RNG that drives loss/marking draws and the virtual clock are
  injectable, which is what lets the sharded scan engine give each
  site an independent deterministic substream (docs/architecture.md).
"""

from __future__ import annotations

from typing import Callable

from repro.netsim.clock import Clock
from repro.netsim.packet import IpPacket
from repro.util.rng import RngStream
from repro.util.weeks import Week
from repro.web.world import World


class ScanWire:
    """Adapts (world, vantage, route, host handler) to the client Wire API."""

    def __init__(
        self,
        world: World,
        vantage_id: str,
        route_key: str,
        handler: Callable[[IpPacket], list[IpPacket]],
        week: Week,
        *,
        rtt: float = 0.03,
        timeout: float = 1.0,
        rng: RngStream | None = None,
        clock: Clock | None = None,
        path=None,
    ):
        self.world = world
        self.vantage_id = vantage_id
        self.route_key = route_key
        self.handler = handler
        self.week = week
        self.rtt = rtt
        self.timeout = timeout
        self.forward_packets = 0
        self.lost_packets = 0
        self.rng = rng if rng is not None else world.network.rng
        self.clock = clock if clock is not None else world.clock
        #: ``path`` pre-resolves the ECMP member (the exchange core derives
        #: it from the scan 5-tuple up front); otherwise it is resolved
        #: lazily from the first packet's flow key, as before.
        self._path = path

    def exchange(self, packet: IpPacket) -> list[IpPacket]:
        """Send one packet; returns the host's responses (possibly none)."""
        self.forward_packets += 1
        path = self._path
        if path is None:
            template = self.world.network.template_for(
                self.vantage_id, self.route_key, self.week
            )
            path = self._path = template.select(packet.flow_key)
        result = path.traverse(packet, self.clock, self.rng)
        if result.delivered is None:
            # Loss or TTL expiry: the client waits out its timer.
            self.lost_packets += 1
            self.clock.advance(self.timeout)
            return []
        self.clock.advance(self.rtt)
        return self.handler(result.delivered)
