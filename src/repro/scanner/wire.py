"""The wire between a scan client and a simulated host.

Forward packets traverse the registered route (where impairing routers
live); responses are delivered directly — the reverse path is invisible
to all of the paper's measurements (§6.1), so simulating transforms
there would only slow things down without observable effect.
"""

from __future__ import annotations

from typing import Callable

from repro.netsim.packet import IpPacket
from repro.util.weeks import Week
from repro.web.world import World


class ScanWire:
    """Adapts (world, vantage, route, host handler) to the client Wire API."""

    def __init__(
        self,
        world: World,
        vantage_id: str,
        route_key: str,
        handler: Callable[[IpPacket], list[IpPacket]],
        week: Week,
        *,
        rtt: float = 0.03,
        timeout: float = 1.0,
    ):
        self.world = world
        self.vantage_id = vantage_id
        self.route_key = route_key
        self.handler = handler
        self.week = week
        self.rtt = rtt
        self.timeout = timeout
        self.forward_packets = 0
        self.lost_packets = 0

    def exchange(self, packet: IpPacket) -> list[IpPacket]:
        """Send one packet; returns the host's responses (possibly none)."""
        self.forward_packets += 1
        result = self.world.network.send(self.vantage_id, self.route_key, packet, self.week)
        if result.delivered is None:
            # Loss or TTL expiry: the client waits out its timer.
            self.lost_packets += 1
            self.world.clock.advance(self.timeout)
            return []
        self.world.clock.advance(self.rtt)
        return self.handler(result.delivered)
